"""The lint engine: walk files, run rules, apply pragmas and the baseline.

Entry points:

* :func:`lint_paths` — library API over files/directories;
* :func:`lint_source` — one in-memory source blob under a declared module
  name (how the fixture tests exercise each rule without living inside the
  real tree);
* :func:`main` — the CLI behind ``repro lint`` and
  ``python -m repro.analysis``.

Exit codes: 0 clean (after pragmas and baseline), 1 findings at or above
``--fail-on``, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field

from repro.analysis.findings import (SEVERITIES, Baseline, Finding,
                                     render_json, render_text)
from repro.analysis.layering import LayeringRule
from repro.analysis.pragmas import scan_pragmas
from repro.analysis.rules import ALL_RULES, Rule, build_context

__all__ = ["LintResult", "lint_paths", "lint_source", "active_rules", "main"]

DEFAULT_BASELINE = "analysis_baseline.json"


def active_rules() -> list[Rule]:
    """Fresh rule instances for one run (R6 accumulates project state)."""
    return [*ALL_RULES(), LayeringRule()]


@dataclass
class LintResult:
    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale_baseline: set[str] = field(default_factory=set)
    files_checked: int = 0

    def worst_at_least(self, severity: str) -> bool:
        threshold = SEVERITIES.index(severity)
        return any(SEVERITIES.index(f.severity) >= threshold
                   for f in self.findings)

    def render(self, fmt: str) -> str:
        renderer = render_json if fmt == "json" else render_text
        return renderer(self.findings, grandfathered=self.grandfathered,
                        stale=self.stale_baseline,
                        files_checked=self.files_checked)


def _module_name(path: str) -> str:
    """Dotted module from a path, anchored at the last ``repro`` directory.

    Files outside a ``repro`` tree get their stem — rules keyed on
    components simply won't apply, which is what a stray script deserves.
    """
    parts = list(os.path.normpath(os.path.abspath(path)).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchored = None
    for i, part in enumerate(parts):
        if part == "repro":
            anchored = parts[i:]
    if anchored:
        return ".".join(anchored)
    return parts[-1] if parts else path


def _iter_python_files(paths: list[str]) -> list[str]:
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in ("__pycache__", ".git"))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return out


def _rule_tokens(rules: list[Rule]) -> dict[str, str]:
    tokens = {}
    for rule in rules:
        tokens[rule.id] = rule.id
        tokens[rule.slug] = rule.id
    return tokens


def _check_one(source: str, path: str, module: str, rules: list[Rule],
               tokens: dict[str, str]) -> list[Finding]:
    try:
        ctx = build_context(source, path, module)
    except SyntaxError as exc:
        return [Finding(rule="PARSE", slug="syntax-error", severity="error",
                        path=path, line=exc.lineno or 1,
                        message=f"file does not parse: {exc.msg}")]
    pragmas, problems = scan_pragmas(source, path, known=tokens)
    findings = list(problems)
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not pragmas.allows(finding.line, finding.rule, finding.slug):
                findings.append(finding)
    return findings


def lint_source(source: str, *, path: str = "<memory>", module: str | None = None,
                rules: list[Rule] | None = None) -> list[Finding]:
    """Lint one source blob under a declared module name (fixture entry)."""
    rules = active_rules() if rules is None else rules
    module = module if module is not None else _module_name(path)
    findings = _check_one(source, path, module, rules, _rule_tokens(rules))
    for rule in rules:
        findings.extend(rule.finish())
    return findings


def lint_paths(paths: list[str], *, baseline: Baseline | None = None,
               rules: list[Rule] | None = None,
               select: set[str] | None = None) -> LintResult:
    rules = active_rules() if rules is None else rules
    if select:
        unknown = select - {r.id for r in rules} - {r.slug for r in rules}
        if unknown:
            raise ValueError(f"unknown rules selected: {sorted(unknown)}")
        rules = [r for r in rules if r.id in select or r.slug in select]
    tokens = _rule_tokens(rules)
    result = LintResult()
    all_findings: list[Finding] = []
    for file_path in _iter_python_files(paths):
        rel = os.path.relpath(file_path)
        with open(file_path, encoding="utf-8") as handle:
            source = handle.read()
        all_findings.extend(
            _check_one(source, rel, _module_name(file_path), rules, tokens))
        result.files_checked += 1
    for rule in rules:
        all_findings.extend(rule.finish())
    if baseline is not None:
        new, old, stale = baseline.split(all_findings)
        result.findings = new
        result.grandfathered = old
        result.stale_baseline = stale
    else:
        result.findings = all_findings
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-invariant static analysis (rules R1-R9; see "
                    "repro.analysis for the invariants)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", metavar="PATH",
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             f"when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write current findings as the new baseline and "
                             "exit 0")
    parser.add_argument("--select", metavar="R1,R2,...",
                        help="run only these rules (ids or slugs)")
    parser.add_argument("--fail-on", choices=SEVERITIES, default="warning",
                        help="exit 1 at or above this severity (default: "
                             "warning)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    rules = active_rules()
    if args.list_rules:
        for rule in rules:
            scope = ("all files" if rule.components is None
                     else ", ".join(sorted(rule.components)))
            if rule.id == "R6":
                scope = "all files (+ project-wide cycle pass)"
            print(f"{rule.id}  {rule.slug:18s} {rule.severity:8s} "
                  f"[{scope}]  {rule.description}")
        return 0

    baseline = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = args.baseline or (
            DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None)
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"repro lint: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    select = None
    if args.select:
        select = {token.strip() for token in args.select.split(",") if token.strip()}
    try:
        result = lint_paths(args.paths, baseline=baseline, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        Baseline(fingerprints={f.fingerprint for f in result.findings}).save(
            args.write_baseline)
        print(f"wrote {len(result.findings)} fingerprints to "
              f"{args.write_baseline}")
        return 0

    print(result.render(args.format))
    return 1 if result.worst_at_least(args.fail_on) else 0
