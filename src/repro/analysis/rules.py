"""The project-invariant rules (R1–R10), each grounded in a real bug class.

Every rule documents the incident or contract it machine-checks; the
history lives in ``CHANGES.md`` and the invariant statements in
``repro/analysis/__init__``.  Rules see one :class:`FileContext` at a time;
the layering rule (R6, :mod:`repro.analysis.layering`) additionally gets a
project-wide pass for cycle detection.

Adding a rule: subclass :class:`Rule`, implement :meth:`check`, append to
:data:`ALL_RULES`.  Keep rules *syntactic and local* — anything needing
whole-program dataflow belongs in the runtime checker
(:mod:`repro.analysis.lockcheck`), not here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = [
    "FileContext",
    "Rule",
    "ALL_RULES",
    "build_context",
    "resolve_call",
]


# --------------------------------------------------------------------------
# File context: parsed tree + the cheap semantic indexes every rule needs.
# --------------------------------------------------------------------------

@dataclass
class FileContext:
    path: str
    module: str                       # dotted, e.g. "repro.mpi.wire"
    source: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)  # local name -> dotted target

    @property
    def component(self) -> str:
        """First package level under ``repro`` ("mpi", "nn", ...; "" = root)."""
        parts = self.module.split(".")
        if parts[0] != "repro":
            return parts[0]
        return parts[1] if len(parts) > 1 else ""

    def in_function(self, node: ast.AST) -> bool:
        """True when ``node`` only runs inside a function/lambda body."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return True
            current = self.parents.get(current)
        return False

    def ancestors(self, node: ast.AST):
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)


def _index_imports(tree: ast.Module) -> dict[str, str]:
    """Local-name -> dotted-origin map over *all* imports in the file.

    ``import numpy as np`` maps ``np -> numpy``; ``from repro.telemetry
    import bus as telemetry`` maps ``telemetry -> repro.telemetry.bus``.
    Function-level imports are indexed too: a lazy import does not change
    what a name means.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def build_context(source: str, path: str, module: str) -> FileContext:
    tree = ast.parse(source, filename=path)
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return FileContext(path=path, module=module, source=source, tree=tree,
                       parents=parents, imports=_index_imports(tree))


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call(ctx: FileContext, func: ast.AST) -> str | None:
    """Resolve a call target through the import table.

    ``np.random.rand`` -> ``numpy.random.rand`` when ``np`` was imported as
    numpy; a bare ``loads`` imported from pickle -> ``pickle.loads``.
    Unresolvable expressions (calls on locals, subscripts) return None.
    """
    dotted = _dotted(func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    origin = ctx.imports.get(root)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


# --------------------------------------------------------------------------
# Rule base.
# --------------------------------------------------------------------------

class Rule:
    id: str = "R?"
    slug: str = "unnamed"
    severity: str = "error"
    description: str = ""
    #: components the rule applies to (None = every file).
    components: frozenset[str] | None = None

    def applies(self, ctx: FileContext) -> bool:
        return self.components is None or ctx.component in self.components

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(rule=self.id, slug=self.slug, severity=self.severity,
                       path=ctx.path, line=getattr(node, "lineno", 1),
                       message=message)

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finish(self) -> list[Finding]:
        """Project-wide findings after every file was checked (R6 cycles)."""
        return []


# --------------------------------------------------------------------------
# R1: no unpickling reachable on pre-auth network paths.
# --------------------------------------------------------------------------

class PreauthPickleRule(Rule):
    """``pickle.loads`` on a routable socket before authentication is RCE.

    The PR-3 rendezvous unpickled HELLO frames before verifying the token —
    a remote-code-execution hole fixed by authenticating a size-capped JSON
    frame first.  Every unpickling site in the transport layer
    (``repro.mpi``) must therefore be *post-auth by construction* and carry
    an ``allow[R1]`` pragma saying why its input is trusted.
    """

    id = "R1"
    slug = "preauth-pickle"
    severity = "error"
    description = "unpickling in the network layer outside audited post-auth sites"
    components = frozenset({"mpi"})

    _TARGETS = ("pickle.loads", "pickle.load", "pickle.Unpickler")

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(ctx, node.func)
            if resolved in self._TARGETS:
                out.append(self.finding(
                    ctx, node,
                    f"{resolved} in the network layer: unpickling attacker-"
                    f"reachable bytes is code execution — prove this site is "
                    f"post-auth and annotate it, or parse a constrained format",
                ))
        return out


# --------------------------------------------------------------------------
# R2: determinism — the bit-identity oracle's enemies.
# --------------------------------------------------------------------------

class DeterminismRule(Rule):
    """Global RNG state, wall clocks and unordered iteration kill bit-identity.

    The repro's core oracle is that sequential == threaded == process ==
    socket, *bit for bit*.  Anything drawing from interpreter-global
    randomness (``np.random.rand``, ``random.random``), reading the wall
    clock on a hot path, or iterating a set where order feeds genome or
    fitness math can silently break that across runs, Python builds, or
    rank counts.

    Scope note — dtype-coercion sites: since dtype became a run-level
    policy (float64/float32/mixed16), a bare ``np.asarray(x)`` on a
    genome/parameter path is a determinism hazard of the same family: it
    silently adopts whatever dtype arrives, so one call site normalizing
    to float64 while another preserves float32 forks the trajectory
    between backends.  Such sites must either pass an explicit ``dtype=``
    or document that preserving the incoming dtype is the contract (see
    ``Genome.__post_init__`` and ``serialize.vector_to_parameters``).
    This rule does not auto-flag them — ``np.asarray`` without ``dtype=``
    is legitimate on shape-only and non-numeric paths — but reviewers of
    ``coevolution``/``nn``/``gan`` diffs should hold new coercion sites
    to that standard.
    """

    id = "R2"
    slug = "determinism"
    severity = "error"
    description = "global RNG / wall clock / unordered-set iteration on deterministic paths"

    _NP_GLOBAL = {
        "rand", "randn", "random", "randint", "random_integers", "normal",
        "uniform", "choice", "shuffle", "permutation", "seed",
        "standard_normal", "binomial", "multinomial", "poisson", "beta",
        "gamma", "exponential", "random_sample", "sample", "bytes",
        "get_state", "set_state",
    }
    _PY_GLOBAL = {
        "random", "randint", "seed", "choice", "shuffle", "uniform", "gauss",
        "sample", "randrange", "normalvariate", "betavariate", "getrandbits",
    }
    #: wall-clock reads are flagged only where they can sit on the train path.
    _HOT_COMPONENTS = {"nn", "coevolution", "gan", "mpi"}
    #: set iteration is flagged only where order feeds genome/fitness math.
    _ORDERED_COMPONENTS = {"coevolution", "nn", "gan"}

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                resolved = resolve_call(ctx, node.func)
                if resolved is None:
                    continue
                if (resolved.startswith("numpy.random.")
                        and resolved.rsplit(".", 1)[1] in self._NP_GLOBAL):
                    out.append(self.finding(
                        ctx, node,
                        f"{resolved} draws from numpy's global RNG — thread a "
                        f"seeded np.random.Generator through instead",
                    ))
                elif (resolved.startswith("random.")
                        and resolved.rsplit(".", 1)[1] in self._PY_GLOBAL):
                    out.append(self.finding(
                        ctx, node,
                        f"{resolved} uses Python's global RNG — thread a "
                        f"seeded np.random.Generator through instead",
                    ))
                elif (resolved == "time.time"
                        and ctx.component in self._HOT_COMPONENTS):
                    out.append(self.finding(
                        ctx, node,
                        "time.time() on a hot path: wall clocks jump (NTP) and "
                        "differ per rank — use time.perf_counter()/monotonic(), "
                        "or move the wall-clock read off the train path",
                    ))
            elif isinstance(node, (ast.For, ast.comprehension)):
                if ctx.component not in self._ORDERED_COMPONENTS:
                    continue
                iterable = node.iter
                is_set = isinstance(iterable, ast.Set) or (
                    isinstance(iterable, ast.Call)
                    and resolve_call(ctx, iterable.func) in ("set", "frozenset")
                )
                if is_set:
                    out.append(self.finding(
                        ctx, iterable,
                        "iterating a set where order can feed genome/fitness "
                        "computation — sets hash-order by id across runs; wrap "
                        "in sorted()",
                    ))
        return out


# --------------------------------------------------------------------------
# R3: live arena aliases must not cross thread/transport boundaries.
# --------------------------------------------------------------------------

class AliasEscapeRule(Rule):
    """The PR-4 aliasing contract, machine-checked at the obvious sinks.

    ``parameters_to_vector(..., alias=True)`` / ``center_genomes(alias=True)``
    borrow the *live* parameter arena: zero-copy, but the optimizer mutates
    that memory on the next step.  Transports serialize payloads on
    background sender threads, so an alias handed to a send (or parked on an
    object another thread reads) is a data race on training state.  Aliases
    must stay within the borrowing function; anything crossing a boundary
    gets ``.copy()`` first.
    """

    id = "R3"
    slug = "alias-escape"
    severity = "error"
    description = "arena alias (alias=True) passed to a send or stored cross-thread"
    components = frozenset({"nn", "gan", "coevolution", "parallel", "mpi", "serving"})

    _SEND_ATTRS = {
        "send", "send_to", "put", "put_nowait", "publish", "submit",
        "exchange_genomes", "send_result", "send_node_info", "reply_status",
    }

    @staticmethod
    def _is_alias_call(node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and any(
            kw.arg == "alias" and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for scope in ast.walk(ctx.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(self._check_function(ctx, scope))
        return out

    def _check_function(self, ctx: FileContext, fn: ast.AST) -> list[Finding]:
        tainted: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and self._is_alias_call(node.value):
                for target in node.targets:
                    elts = target.elts if isinstance(target, ast.Tuple) else [target]
                    for elt in elts:
                        if isinstance(elt, ast.Name):
                            tainted.add(elt.id)

        def is_tainted(node: ast.AST) -> bool:
            if self._is_alias_call(node):
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("copy", "deepcopy")):
                return False  # the sanctioned crossing: a defensive copy
            if isinstance(node, ast.Name):
                return node.id in tainted
            return any(is_tainted(child) for child in ast.iter_child_nodes(node))

        out = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                attr = node.func.attr if isinstance(node.func, ast.Attribute) else (
                    node.func.id if isinstance(node.func, ast.Name) else None)
                resolved = resolve_call(ctx, node.func)
                is_sink = attr in self._SEND_ATTRS or resolved == "threading.Thread"
                if is_sink and any(is_tainted(arg) for arg in list(node.args)
                                   + [kw.value for kw in node.keywords]):
                    out.append(self.finding(
                        ctx, node,
                        "live arena alias (alias=True) reaches a send/thread "
                        "boundary — transports serialize on background threads "
                        "while the optimizer mutates the slab; pass a .copy()",
                    ))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and is_tainted(node.value):
                        out.append(self.finding(
                            ctx, node,
                            "live arena alias stored on an object attribute — "
                            "any other thread reading it races the optimizer; "
                            "store a .copy() or keep the alias function-local",
                        ))
                        break
        return out


# --------------------------------------------------------------------------
# R4: weak-keyed mappings whose values pin their own keys.
# --------------------------------------------------------------------------

class WeakrefLeakRule(Rule):
    """The PR-5 8 GB lesson: ``WeakKeyDictionary[k] = value_referencing_k``.

    A weak-keyed registry only collects an entry when its key dies — but if
    the stored value holds a strong reference back to the key, the key can
    never die.  PR 5's kernel registry did exactly that (kernels kept their
    network module), pinning every network + arena slab for the process
    lifetime and ballooning the test suite to ~8 GB RSS.
    """

    id = "R4"
    slug = "weakref-leak"
    severity = "error"
    description = "weak-keyed mapping value strongly references its key"

    def check(self, ctx: FileContext) -> list[Finding]:
        weak_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                resolved = resolve_call(ctx, node.value.func)
                if resolved in ("weakref.WeakKeyDictionary",):
                    for target in node.targets:
                        name = _dotted(target)
                        if name is not None:
                            weak_names.add(name.split(".")[-1])
        if not weak_names:
            return []

        def key_root(node: ast.AST) -> str | None:
            dotted = _dotted(node)
            return dotted.split(".")[0] if dotted else None

        out = []
        for node in ast.walk(ctx.tree):
            mapping = key = value = None
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Subscript)):
                sub = node.targets[0]
                mapping, key, value = _dotted(sub.value), sub.slice, node.value
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "setdefault" and len(node.args) == 2):
                mapping, key, value = (_dotted(node.func.value),
                                       node.args[0], node.args[1])
            if mapping is None or mapping.split(".")[-1] not in weak_names:
                continue
            root = key_root(key)
            if root and any(isinstance(sub, ast.Name) and sub.id == root
                            for sub in ast.walk(value)):
                out.append(self.finding(
                    ctx, node,
                    f"value stored in weak-keyed mapping "
                    f"'{mapping.split('.')[-1]}' references its key "
                    f"'{root}' — the entry can never be collected (the PR-5 "
                    f"8 GB leak); drop the back-reference or hold it weakly",
                ))
        return out


# --------------------------------------------------------------------------
# R5: telemetry sites must be guarded by the level flag.
# --------------------------------------------------------------------------

class TelemetryGuardRule(Rule):
    """``telemetry.count``/``gauge`` outside ``if telemetry.enabled():``.

    The bus's contract is one int check per instrumentation point when off —
    that is what the CI 2%-overhead ratchet measures.  An unguarded
    ``count()``/``gauge()`` still pays a full function call plus argument
    evaluation on every pass; guard the site (``span()`` needs no guard —
    it returns the shared null span after its own level check).
    """

    id = "R5"
    slug = "telemetry-guard"
    severity = "error"
    description = "telemetry count/gauge call not guarded by enabled()"

    _CALLS = {"count", "gauge"}
    _GUARDS = {"enabled", "tracing"}

    def _guarded(self, ctx: FileContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.If):
                for sub in ast.walk(ancestor.test):
                    if isinstance(sub, ast.Call):
                        attr = (sub.func.attr if isinstance(sub.func, ast.Attribute)
                                else sub.func.id if isinstance(sub.func, ast.Name)
                                else None)
                        if attr in self._GUARDS:
                            return True
        return False

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._CALLS):
                continue
            base = _dotted(node.func.value)
            if base is None:
                continue
            origin = ctx.imports.get(base.split(".")[0], base)
            if not (origin == "repro.telemetry"
                    or origin.startswith("repro.telemetry.")):
                continue
            if not self._guarded(ctx, node):
                out.append(self.finding(
                    ctx, node,
                    f"telemetry.{node.func.attr}() outside an "
                    f"'if telemetry.enabled():' guard — unguarded sites pay a "
                    f"call + argument evaluation when telemetry is off and "
                    f"erode the 2% CI overhead ratchet",
                ))
        return out


# --------------------------------------------------------------------------
# R7: no threads or live sockets created at import time.
# --------------------------------------------------------------------------

class ForkSafetyRule(Rule):
    """Import-time threads/sockets are invisible passengers across fork.

    The process backend forks ranks; a thread started at import time exists
    in the parent only — after fork the child inherits locked locks and
    half-initialized state but not the thread, the classic fork-safety
    hang.  Threads and sockets must be created lazily, after the fork
    boundary (the transports and serving engine all do this).
    """

    id = "R7"
    slug = "fork-safety"
    severity = "error"
    description = "thread or socket creation at module import time"

    _TARGETS = ("threading.Thread", "threading.Timer", "socket.socket",
                "socket.create_connection", "socket.create_server")

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or ctx.in_function(node):
                continue
            resolved = resolve_call(ctx, node.func)
            if resolved in self._TARGETS:
                out.append(self.finding(
                    ctx, node,
                    f"{resolved} at import time: forked ranks inherit the "
                    f"parent's memory but not its threads/sockets — create "
                    f"lazily after the fork boundary",
                ))
        return out


# --------------------------------------------------------------------------
# R8: environment reads at import time belong to repro.runtime.
# --------------------------------------------------------------------------

class EnvAtImportRule(Rule):
    """Module-scope ``os.environ`` reads freeze configuration at import order.

    A flag read at import time cannot be changed by the embedding
    application, is invisible to spawned workers whose environment differs,
    and makes behavior depend on *which module imported first*.  Process-
    level environment policy lives in :mod:`repro.runtime`; everything else
    reads the environment inside functions, at use time.  Deliberate
    import-time kill switches carry an ``allow[R8]`` pragma.
    """

    id = "R8"
    slug = "env-at-import"
    severity = "warning"
    description = "os.environ read at module import time outside repro.runtime"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module != "repro.runtime"

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if self._is_env_read(ctx, node) and not ctx.in_function(node):
                out.append(self.finding(
                    ctx, node,
                    "environment read at import time — behavior now depends "
                    "on import order and never sees later set_level()-style "
                    "updates; read inside a function (env policy lives in "
                    "repro.runtime)",
                ))
        return out

    @staticmethod
    def _is_env_read(ctx: FileContext, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            resolved = resolve_call(ctx, node.func)
            if resolved == "os.getenv":
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("get", "pop")
                    and _dotted(node.func.value) == "os.environ"):
                return True
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            return _dotted(node.value) == "os.environ"
        return False


# --------------------------------------------------------------------------
# R9: socket retry loops belong to repro.mpi.backoff.
# --------------------------------------------------------------------------

class BareSocketRetryRule(Rule):
    """Hand-rolled socket retry loops hide real failures and stampede peers.

    The fault-tolerance PR centralized transient-network retry in
    :mod:`repro.mpi.backoff` (bounded attempts, exponential delay, jitter,
    counted via ``TransportStats.count_send_retry``).  A loop that calls a
    socket primitive, swallows the ``OSError``/``WireError`` it raises and
    goes around again is an unbounded, unjittered, uncounted retry — it
    masks dead peers from the heartbeat layer and synchronized reconnect
    storms are exactly what the backoff jitter exists to prevent.  Use
    :func:`repro.mpi.backoff.with_backoff` / ``retry_connect`` instead.

    Not flagged: handlers that escape the loop (``break``/``return``/
    ``raise``), polling loops catching ``MpiTimeoutError`` (a timeout poll
    is not a failure retry), and ``accept()`` loops (a server accepting the
    next client is not retrying a failed operation).
    """

    id = "R9"
    slug = "bare-socket-retry"
    severity = "error"
    description = "hand-rolled socket retry loop outside repro.mpi.backoff"

    _SOCKET_ATTRS = {"send", "sendall", "sendmsg", "recv", "recv_into",
                     "recvfrom", "connect", "connect_ex"}
    _SOCKET_CALLS = {
        "socket.create_connection",
        "repro.mpi.wire.write_frame",
        "repro.mpi.wire.read_frame",
    }
    #: resolved exception names whose swallowing makes the loop a retry.
    _SWALLOWED = {
        "OSError", "IOError", "ConnectionError", "ConnectionResetError",
        "ConnectionRefusedError", "ConnectionAbortedError",
        "BrokenPipeError", "TimeoutError", "InterruptedError",
        "socket.error", "socket.timeout", "socket.gaierror",
        "repro.mpi.wire.WireError", "repro.mpi.errors.MpiError",
        "Exception", "BaseException",
    }

    def applies(self, ctx: FileContext) -> bool:
        # The sanctioned home of retry loops is exempt by construction.
        return ctx.module != "repro.mpi.backoff"

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            if not self._in_retry_loop(ctx, node):
                continue
            if not self._try_does_socket_io(ctx, node):
                continue
            if any(self._handler_swallows(ctx, handler)
                   for handler in node.handlers):
                out.append(self.finding(
                    ctx, node,
                    "socket operation retried by a bare loop (exception "
                    "swallowed, loop continues) — unbounded, unjittered and "
                    "invisible to TransportStats; route the retry through "
                    "repro.mpi.backoff (with_backoff/retry_connect)",
                ))
        return out

    def _in_retry_loop(self, ctx: FileContext, node: ast.AST) -> bool:
        """Enclosing while loop, or a for-over-range attempt counter.

        ``for conn in connections:`` fan-outs are not retries — the loop
        visits different peers, it does not repeat a failed operation.
        The walk stops at function boundaries: a callback *defined* inside
        a loop runs once per call, not once per loop pass.
        """
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                return False
            if isinstance(ancestor, ast.While):
                return True
            if isinstance(ancestor, ast.For):
                iterable = ancestor.iter
                if (isinstance(iterable, ast.Call)
                        and resolve_call(ctx, iterable.func) == "range"):
                    return True
        return False

    def _try_does_socket_io(self, ctx: FileContext, node: ast.Try) -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                if (isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in self._SOCKET_ATTRS):
                    return True
                if resolve_call(ctx, sub.func) in self._SOCKET_CALLS:
                    return True
        return False

    def _handler_swallows(self, ctx: FileContext, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            caught = True  # bare except: swallows everything
        else:
            types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                     else [handler.type])
            caught = any(resolve_call(ctx, t) in self._SWALLOWED for t in types)
        if not caught:
            return False
        # An escaping handler ends the loop — that is failure handling,
        # not a retry.
        return not any(isinstance(sub, (ast.Raise, ast.Break, ast.Return))
                       for stmt in handler.body for sub in ast.walk(stmt))


# --------------------------------------------------------------------------
# R10: inter-rank payloads carry a membership-epoch tag.
# --------------------------------------------------------------------------

class EpochTagRule(Rule):
    """Payload-bearing wire dataclasses must declare an ``epoch`` field.

    Elastic membership fences the exchange by epoch: when a cell changes
    hands (death, drain, live join) the membership epoch bumps, and the
    leaving rank's in-flight frames — stamped with the older epoch — are
    dropped instead of being delivered as if they came from the new owner.
    The fence only works if every payload that crosses ranks carries the
    tag.  A payload dataclass without an ``epoch`` field is invisible to
    the fence: its frames survive a hand-off and can corrupt the adopting
    rank's generation with pre-migration state.

    Checked syntactically: any ``@dataclass`` in the transport or parallel
    layers whose name ends in ``Payload`` must have a class-level ``epoch``
    annotation (a plain ``epoch: int = 0`` keeps static runs byte-stable).
    Control messages (tasks, notices, replies) are exempt — they are
    master-mediated and never raced across a hand-off.
    """

    id = "R10"
    slug = "epoch-tag"
    severity = "error"
    description = "payload-bearing wire dataclass without an epoch tag"
    components = frozenset({"mpi", "parallel"})

    _DATACLASS = {"dataclasses.dataclass", "dataclass"}

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Payload"):
                continue
            if not self._is_dataclass(ctx, node):
                continue
            if not self._declares_epoch(node):
                out.append(self.finding(
                    ctx, node,
                    f"payload dataclass {node.name} has no 'epoch' field: "
                    "frames from a rank that left survive its hand-off and "
                    "bypass the membership fence — declare 'epoch: int = 0' "
                    "and stamp it from FaultState.current_epoch()",
                ))
        return out

    def _is_dataclass(self, ctx: FileContext, node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if resolve_call(ctx, target) in self._DATACLASS:
                return True
        return False

    @staticmethod
    def _declares_epoch(node: ast.ClassDef) -> bool:
        return any(isinstance(stmt, ast.AnnAssign)
                   and isinstance(stmt.target, ast.Name)
                   and stmt.target.id == "epoch"
                   for stmt in node.body)


def ALL_RULES() -> list[Rule]:
    """Fresh instances of every per-file rule (R6 is added by the engine)."""
    return [
        PreauthPickleRule(),
        DeterminismRule(),
        AliasEscapeRule(),
        WeakrefLeakRule(),
        TelemetryGuardRule(),
        ForkSafetyRule(),
        EnvAtImportRule(),
        BareSocketRetryRule(),
        EpochTagRule(),
    ]
