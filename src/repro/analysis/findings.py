"""Findings: the currency of the static analyzer.

A :class:`Finding` is one rule violation at one source location.  The
engine collects them, subtracts pragma-suppressed and baseline-grandfathered
entries, and renders the remainder as text or JSON.

Baselines
---------

A baseline file (``analysis_baseline.json``) is a checked-in list of
finding *fingerprints* that are temporarily tolerated: CI fails only on
findings **not** in the baseline (regressions), so a new rule can land
before every historical violation is fixed.  Fingerprints deliberately
exclude the line number — moving code around must not un-grandfather a
finding — and the engine reports stale entries so the file shrinks
monotonically.  The project's own baseline is empty: every finding in
``src/`` is either fixed or carries an inline ``# repro: allow[...]``
pragma with a reason.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "SEVERITIES",
    "Finding",
    "Baseline",
    "render_text",
    "render_json",
]

#: Order matters: later entries are more severe.
SEVERITIES = ("note", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``rule`` is the short id (``R1`` .. ``R8`` or a meta-rule like
    ``PRAGMA``); ``slug`` the human name (``preauth-pickle``); ``path`` is
    repo-relative when the engine can make it so.
    """

    rule: str
    slug: str
    severity: str
    path: str
    line: int
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; known: {SEVERITIES}")

    @property
    def fingerprint(self) -> str:
        """Baseline identity: rule + file + message, line-independent."""
        return f"{self.rule}:{self.path}:{self.message}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.severity}: "
                f"[{self.rule}/{self.slug}] {self.message}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "slug": self.slug,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Baseline:
    """Grandfathered fingerprints loaded from / saved to JSON."""

    fingerprints: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(
                f"{path}: not a baseline file (expected an object with a "
                f"'findings' list)"
            )
        return cls(fingerprints={str(f) for f in payload["findings"]})

    def save(self, path: str) -> None:
        payload = {"version": 1, "findings": sorted(self.fingerprints)}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding], set[str]]:
        """Partition into (new, grandfathered) + the stale fingerprints."""
        new: list[Finding] = []
        old: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            if finding.fingerprint in self.fingerprints:
                old.append(finding)
                seen.add(finding.fingerprint)
            else:
                new.append(finding)
        return new, old, self.fingerprints - seen


def render_text(findings: list[Finding], *, grandfathered: list[Finding] | None = None,
                stale: set[str] | None = None, files_checked: int = 0) -> str:
    lines = [f.render() for f in sorted(
        findings, key=lambda f: (f.path, f.line, f.rule))]
    for finding in sorted(grandfathered or [], key=lambda f: (f.path, f.line)):
        lines.append(f"{finding.render()}  (baseline: grandfathered)")
    for fingerprint in sorted(stale or ()):
        lines.append(f"stale baseline entry (fixed — remove it): {fingerprint}")
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    summary = ", ".join(f"{n} {sev}{'s' if n != 1 else ''}"
                        for sev, n in sorted(counts.items())) or "clean"
    lines.append(f"{files_checked} files checked: {summary}")
    return "\n".join(lines)


def render_json(findings: list[Finding], *, grandfathered: list[Finding] | None = None,
                stale: set[str] | None = None, files_checked: int = 0) -> str:
    payload = {
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in sorted(
            findings, key=lambda f: (f.path, f.line, f.rule))],
        "grandfathered": [f.to_dict() for f in (grandfathered or [])],
        "stale_baseline": sorted(stale or ()),
    }
    return json.dumps(payload, indent=2)
