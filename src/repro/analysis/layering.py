"""R6: the declared import-layer DAG, enforced.

The architecture's layering is a contract, not a convention: lower layers
must stay importable without dragging in the heavy upper ones (a worker
rank imports ``mpi`` + ``coevolution``, never ``api``/``serving``; the
telemetry bus must be importable from *anywhere* without cycles).  The
declared layers, bottom to top:

====== =====================================================
layer  components
====== =====================================================
0      ``registry``, ``profiling``, ``runtime``, ``_deprecation``,
       ``analysis`` (leaf-safe: import nothing from repro)
1      ``telemetry``, ``config``
2      ``data``, ``nn``
3      ``gan``
4      ``coevolution``, ``metrics``
5      ``cluster``, ``mpi``, ``parallel``
6      ``serving``, ``api``
7      ``experiments``, ``cli``, ``viz``
8      the ``repro`` root package and ``__main__`` (facade)
====== =====================================================

Only **eager, module-scope** imports count: an import inside a function
(lazy) or under ``if TYPE_CHECKING:`` is the sanctioned way to reference
upward (e.g. ``coevolution.checkpoint`` reaching ``serving`` lazily for
``to_servable``).  Same-layer imports are allowed (``parallel`` uses
``mpi``), but module-level cycles are rejected anywhere — an SCC in the
eager import graph means import order decides which module sees a
half-initialized sibling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule

__all__ = ["LAYERS", "LayeringRule", "eager_repro_imports"]

LAYERS: dict[str, int] = {
    "registry": 0, "profiling": 0, "runtime": 0, "_deprecation": 0,
    "analysis": 0,
    "telemetry": 1, "config": 1,
    "data": 2, "nn": 2,
    "gan": 3,
    "coevolution": 4, "metrics": 4,
    "cluster": 5, "mpi": 5, "parallel": 5,
    "serving": 6, "api": 6,
    "experiments": 7, "cli": 7, "viz": 7,
    "": 8, "__main__": 8,
}


def _type_checking_guard(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@dataclass(frozen=True)
class _Edge:
    target_module: str    # dotted module as written
    line: int


def eager_repro_imports(tree: ast.Module,
                        known_components: set[str] | None = None) -> list[_Edge]:
    """Module-scope imports of ``repro[.x]``, skipping TYPE_CHECKING blocks.

    ``from repro import X`` resolves to component ``X`` when ``X`` is a
    known component (submodule import through the root), otherwise to the
    root facade.
    """
    edges: list[_Edge] = []

    def visit(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro" or alias.name.startswith("repro."):
                        edges.append(_Edge(alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                if node.module == "repro":
                    for alias in node.names:
                        name = alias.name
                        if known_components and name in known_components:
                            edges.append(_Edge(f"repro.{name}", node.lineno))
                        else:
                            edges.append(_Edge("repro", node.lineno))
                elif node.module.startswith("repro."):
                    # ``from repro.nn import functional`` is a sibling-submodule
                    # import, not a dependency on the package __init__ — record
                    # the candidate submodule; _resolve falls back to the
                    # package when no scanned module matches (a plain name).
                    for alias in node.names:
                        edges.append(_Edge(f"{node.module}.{alias.name}",
                                           node.lineno))
            elif isinstance(node, ast.If):
                if not _type_checking_guard(node):
                    visit(node.body)
                    visit(node.orelse)
            elif isinstance(node, (ast.Try, ast.With)):
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        visit([sub])
                if isinstance(node, ast.Try):
                    for handler in node.handlers:
                        visit(handler.body)
    visit(tree.body)
    return edges


def _component_of(module: str) -> str:
    parts = module.split(".")
    if parts[0] != "repro":
        return parts[0]
    return parts[1] if len(parts) > 1 else ""


class LayeringRule(Rule):
    """Per-file layer checks plus a project-wide cycle pass (see module doc)."""

    id = "R6"
    slug = "layering"
    severity = "error"
    description = "eager import violating the declared layer DAG, or an import cycle"

    def __init__(self, layers: dict[str, int] | None = None):
        self.layers = dict(LAYERS if layers is None else layers)
        #: module -> [(imported module, line)] over the whole run, for cycles.
        self._graph: dict[str, list[tuple[str, int]]] = {}
        self._paths: dict[str, str] = {}
        self._known = {c for c in self.layers if c} | {"analysis"}

    def check(self, ctx: FileContext) -> list[Finding]:
        out: list[Finding] = []
        my_component = ctx.component
        my_layer = self.layers.get(my_component)
        edges = eager_repro_imports(ctx.tree, known_components=self._known)
        self._graph.setdefault(ctx.module, [])
        self._paths[ctx.module] = ctx.path
        seen: set[tuple[str, int]] = set()
        for edge in edges:
            self._graph[ctx.module].append((edge.target_module, edge.line))
            target_component = _component_of(edge.target_module)
            if (target_component, edge.line) in seen:
                continue
            seen.add((target_component, edge.line))
            target_layer = self.layers.get(target_component)
            if my_layer is None:
                out.append(Finding(
                    rule=self.id, slug=self.slug, severity=self.severity,
                    path=ctx.path, line=edge.line,
                    message=f"component '{my_component or 'repro'}' is not in "
                            f"the declared layer map — add it to "
                            f"repro.analysis.layering.LAYERS at a conscious "
                            f"height",
                ))
                break
            if target_layer is None:
                out.append(Finding(
                    rule=self.id, slug=self.slug, severity=self.severity,
                    path=ctx.path, line=edge.line,
                    message=f"import of undeclared component "
                            f"'{target_component or 'repro'}' — add it to the "
                            f"layer map",
                ))
            elif target_layer > my_layer:
                out.append(Finding(
                    rule=self.id, slug=self.slug, severity=self.severity,
                    path=ctx.path, line=edge.line,
                    message=f"layer violation: "
                            f"{my_component or 'repro'} (layer {my_layer}) "
                            f"eagerly imports "
                            f"{target_component or 'repro'} (layer "
                            f"{target_layer}) — import lazily inside the "
                            f"using function, or move the dependency down",
                ))
        return out

    # -- project-wide cycle detection ------------------------------------------

    def finish(self) -> list[Finding]:
        """Reject module-level SCCs in the eager import graph.

        Edges pointing outside the scanned set (e.g. linting one file) are
        ignored — cycle detection needs the closed graph.
        """
        graph = {
            module: sorted({target for target, _ in edges
                            if self._resolve(target) is not None})
            for module, edges in self._graph.items()
        }
        resolved = {m: [self._resolve(t) for t in ts] for m, ts in graph.items()}
        cycles = _find_cycles(resolved)
        out = []
        for cycle in cycles:
            anchor = min(cycle)
            pretty = " -> ".join(list(cycle) + [cycle[0]])
            out.append(Finding(
                rule=self.id, slug=self.slug, severity=self.severity,
                path=self._paths.get(anchor, anchor), line=1,
                message=f"eager import cycle: {pretty} — one of these must "
                        f"become a lazy (function-scope) import",
            ))
        return out

    def _resolve(self, target: str) -> str | None:
        """Map an imported dotted name onto a scanned module, if any."""
        candidate = target
        while candidate:
            if candidate in self._graph:
                return candidate
            if f"{candidate}.__init__" in self._graph:
                return f"{candidate}.__init__"
            candidate = candidate.rpartition(".")[0]
        return None


def _find_cycles(graph: dict[str, list[str | None]]) -> list[list[str]]:
    """Tarjan SCCs of size > 1 (plus direct self-loops), sorted."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    stack: list[str] = []
    on_stack: set[str] = set()
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in graph.get(node, ()):
            if succ is None or succ == node:
                continue
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sorted(sccs)
