"""Terminal visualization helpers (no plotting dependencies).

The examples and the figure regenerators render everything as text:
generated digits as ASCII art, fitness trajectories as sparklines, the
Fig. 4 comparison as horizontal bars.  Consolidated here so every consumer
renders identically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_image", "ascii_image_row", "sparkline", "horizontal_bars"]

_SHADES = " .:-=+*#%@"
_BLOCKS = "▁▂▃▄▅▆▇█"


def ascii_image(image: np.ndarray, side: int | None = None, *,
                value_range: tuple[float, float] = (-1.0, 1.0)) -> str:
    """Render a flat grayscale image as ASCII art.

    ``value_range`` maps pixel values to ink density (defaults to the
    generator's tanh range).  Rows are subsampled 2:1 because terminal
    cells are roughly twice as tall as wide.
    """
    flat = np.asarray(image, dtype=np.float64).ravel()
    if side is None:
        side = int(round(np.sqrt(flat.size)))
    if side * side != flat.size:
        raise ValueError(f"image of {flat.size} pixels is not {side}x{side}")
    lo, hi = value_range
    if hi <= lo:
        raise ValueError("value_range must be increasing")
    grid = np.clip((flat.reshape(side, side) - lo) / (hi - lo), 0.0, 1.0)
    rows = []
    for r in range(0, side, 2):
        rows.append("".join(_SHADES[min(9, int(v * 9.999))] for v in grid[r]))
    return "\n".join(rows)


def ascii_image_row(images: np.ndarray, side: int | None = None, *,
                    value_range: tuple[float, float] = (-1.0, 1.0),
                    gap: str = "  ") -> str:
    """Render several images side by side (one terminal block)."""
    blocks = [ascii_image(img, side, value_range=value_range).splitlines()
              for img in images]
    if not blocks:
        return ""
    height = max(len(b) for b in blocks)
    width = len(blocks[0][0]) if blocks[0] else 0
    lines = []
    for row in range(height):
        lines.append(gap.join(
            (block[row] if row < len(block) else " " * width) for block in blocks
        ))
    return "\n".join(lines)


def sparkline(values) -> str:
    """One-line block-character chart; NaNs render as spaces."""
    values = np.asarray(values, dtype=np.float64)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return "(no data)"
    lo, hi = float(finite.min()), float(finite.max())
    span = (hi - lo) or 1.0
    out = []
    for v in values:
        if not np.isfinite(v):
            out.append(" ")
        else:
            out.append(_BLOCKS[int((v - lo) / span * (len(_BLOCKS) - 1))])
    return "".join(out)


def horizontal_bars(labels, values, *, width: int = 46, unit: str = "s") -> str:
    """Aligned horizontal bar chart (the Fig. 4 rendering)."""
    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("one value per label required")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    maximum = max(values, default=0.0) or 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * value / maximum))
        lines.append(f"{label:<{label_width}} {value:10.2f}{unit} |{'#' * filled}")
    return "\n".join(lines)
