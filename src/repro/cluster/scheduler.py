"""A slurm-like best-effort scheduler over the simulated platform.

Models the scheduling behavior the paper's executions depend on: jobs
request tasks/memory/time (Table II), wait in a FIFO best-effort queue until
resources free up, run, and are killed at their time limit.  Time is
simulated explicitly through :meth:`BestEffortScheduler.advance`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.cluster.platform import ClusterPlatform, ComputeNode

__all__ = ["ResourceRequest", "JobState", "Job", "Allocation", "BestEffortScheduler"]


@dataclass(frozen=True)
class ResourceRequest:
    """What one experiment submits (mirrors the paper's Table II rows)."""

    tasks: int
    memory_mb_per_task: int
    time_limit_hours: float
    storage_gb: int = 40

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError("tasks must be >= 1")
        if self.memory_mb_per_task < 1:
            raise ValueError("memory_mb_per_task must be >= 1")
        if self.time_limit_hours <= 0:
            raise ValueError("time_limit_hours must be positive")
        if self.storage_gb < 0:
            raise ValueError("storage_gb must be >= 0")

    @property
    def total_memory_mb(self) -> int:
        return self.tasks * self.memory_mb_per_task


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


@dataclass
class Allocation:
    """Task -> node assignment of a running job."""

    task_nodes: list[str]

    def node_of(self, task: int) -> str:
        return self.task_nodes[task]

    def tasks_per_node(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for name in self.task_nodes:
            counts[name] = counts.get(name, 0) + 1
        return counts


@dataclass
class Job:
    """One submission and its lifecycle."""

    job_id: int
    request: ResourceRequest
    state: JobState = JobState.PENDING
    allocation: Allocation | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    runtime_hours: float | None = None
    """How long the job *would* run if never killed (set on completion path)."""

    remaining_hours: float = field(default=0.0, repr=False)


class BestEffortScheduler:
    """FIFO queue + emptiest-node-first packing, with time-limit enforcement.

    ``backfill=True`` enables simple (non-reserving) backfill: when the
    queue head does not fit, later jobs that *do* fit may start — higher
    utilization at the cost of possible head starvation, the classic
    trade-off of best-effort queues like Cluster-UY's.
    """

    def __init__(self, platform: ClusterPlatform, backfill: bool = False):
        self.platform = platform
        self.backfill = backfill
        self.clock_hours = 0.0
        self._queue: list[Job] = []
        self._running: list[Job] = []
        self._history: list[Job] = []
        self._ids = itertools.count(1)

    # -- submission ---------------------------------------------------------------

    def submit(self, request: ResourceRequest, runtime_hours: float) -> Job:
        """Queue a job that needs ``runtime_hours`` of wall time to finish."""
        if runtime_hours <= 0:
            raise ValueError("runtime_hours must be positive")
        job = Job(
            job_id=next(self._ids),
            request=request,
            submitted_at=self.clock_hours,
            runtime_hours=runtime_hours,
            remaining_hours=runtime_hours,
        )
        self._queue.append(job)
        self._try_start()
        return job

    def cancel(self, job: Job) -> None:
        if job.state is JobState.PENDING:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
            self._history.append(job)
        elif job.state is JobState.RUNNING:
            self._finish(job, JobState.CANCELLED)

    # -- placement ----------------------------------------------------------------

    def _try_place(self, request: ResourceRequest) -> Allocation | None:
        """Emptiest-first packing; returns None when it does not fit now."""
        plan: list[tuple[ComputeNode, int]] = []
        remaining = request.tasks
        for node in self.platform.nodes_by_free_cores():
            if remaining == 0:
                break
            by_cores = node.free_cores
            by_memory = node.free_memory_mb // request.memory_mb_per_task
            take = min(remaining, by_cores, by_memory)
            if take > 0:
                plan.append((node, take))
                remaining -= take
        if remaining > 0:
            return None
        task_nodes: list[str] = []
        for node, take in plan:
            node.occupy(take, take * request.memory_mb_per_task)
            task_nodes.extend([node.name] * take)
        return Allocation(task_nodes)

    def _try_start(self) -> None:
        """Start jobs that fit: strict FIFO by default, backfill optionally."""
        while self._queue:
            job = self._queue[0]
            allocation = self._try_place(job.request)
            if allocation is None:
                break
            self._queue.pop(0)
            self._start(job, allocation)
        if not self.backfill:
            return
        # Backfill pass: any later job that fits right now may start.
        for job in list(self._queue):
            allocation = self._try_place(job.request)
            if allocation is not None:
                self._queue.remove(job)
                self._start(job, allocation)

    def _start(self, job: Job, allocation: Allocation) -> None:
        job.allocation = allocation
        job.state = JobState.RUNNING
        job.started_at = self.clock_hours
        self._running.append(job)

    # -- time ----------------------------------------------------------------------

    def advance(self, hours: float) -> list[Job]:
        """Advance simulated time; returns jobs that finished in the window."""
        if hours < 0:
            raise ValueError("cannot advance time backwards")
        finished: list[Job] = []
        remaining_window = hours
        while remaining_window > 1e-12:
            if not self._running:
                self.clock_hours += remaining_window
                break
            # Next event: a job completing or hitting its limit.
            next_steps = []
            for job in self._running:
                to_limit = job.request.time_limit_hours - (self.clock_hours - job.started_at)
                next_steps.append(min(job.remaining_hours, to_limit))
            step = min(min(next_steps), remaining_window)
            self.clock_hours += step
            remaining_window -= step
            for job in list(self._running):
                job.remaining_hours -= step
                elapsed = self.clock_hours - job.started_at
                if job.remaining_hours <= 1e-12:
                    self._finish(job, JobState.COMPLETED)
                    finished.append(job)
                elif elapsed >= job.request.time_limit_hours - 1e-12:
                    self._finish(job, JobState.TIMEOUT)
                    finished.append(job)
            self._try_start()
        return finished

    def _finish(self, job: Job, state: JobState) -> None:
        assert job.allocation is not None
        for node_name, count in job.allocation.tasks_per_node().items():
            self.platform.node(node_name).release(
                count, count * job.request.memory_mb_per_task
            )
        job.state = state
        job.finished_at = self.clock_hours
        self._running.remove(job)
        self._history.append(job)

    # -- introspection ----------------------------------------------------------------

    @property
    def pending(self) -> list[Job]:
        return list(self._queue)

    @property
    def running(self) -> list[Job]:
        return list(self._running)

    @property
    def history(self) -> list[Job]:
        return list(self._history)
