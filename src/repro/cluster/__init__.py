"""Simulated HPC platform (the Cluster-UY substitute).

The paper runs on Cluster-UY: up to 30 servers with 40-core Xeon Gold 6138
processors and 128 GB RAM, scheduled by slurm with a best-effort queue
(resource availability is *not* guaranteed).  The master process gathers
information about the platform, decides which node runs each slave, and
balances load (paper Section III-B).  This package models exactly the parts
of that infrastructure the master interacts with:

* :mod:`repro.cluster.platform` — nodes and their resources;
* :mod:`repro.cluster.scheduler` — a slurm-like best-effort job queue with
  time limits and background occupancy;
* :mod:`repro.cluster.placement` — the master's load-balancing placement
  strategy and the Table II resource accounting.
"""

from repro.cluster.platform import ClusterPlatform, ComputeNode, cluster_uy
from repro.cluster.scheduler import (
    Allocation,
    BestEffortScheduler,
    Job,
    JobState,
    ResourceRequest,
)
from repro.cluster.placement import (
    PlacementPlan,
    place_tasks,
    plan_from_hosts,
    platform_from_hosts,
    table2_resources,
)

__all__ = [
    "ComputeNode",
    "ClusterPlatform",
    "cluster_uy",
    "ResourceRequest",
    "Job",
    "JobState",
    "Allocation",
    "BestEffortScheduler",
    "PlacementPlan",
    "place_tasks",
    "plan_from_hosts",
    "platform_from_hosts",
    "table2_resources",
]
