"""The master's placement strategy and Table II resource accounting.

Paper Section III-B: the master "decid[es] in which node each slave process
will execute" and "assign[s] workload to each slave, applying a strategy
oriented to minimize and balance the load on each node".  The workload per
cell is uniform (same network, same batch count), so the paper applies
uniform domain decomposition; the strategy here packs tasks across nodes to
balance per-node load, preferring emptier nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.platform import ClusterPlatform, ComputeNode

__all__ = [
    "PlacementPlan",
    "place_tasks",
    "plan_from_hosts",
    "platform_from_hosts",
    "migration_count",
    "table2_resources",
    "PER_TASK_MEMORY_MB",
]

#: Memory requested per task, reverse-engineered from the paper's Table II
#: (9216 MB / 5 tasks = 18432 MB / 10 tasks = 1843.2 MB; the 4x4 row is the
#: same figure rounded up to the next 2 GB boundary).
PER_TASK_MEMORY_MB: float = 1843.2

#: ``PER_TASK_MEMORY_MB`` rounded up to whole MiB — the scheduler's unit.
TASK_MEMORY_CEIL_MB: int = int(PER_TASK_MEMORY_MB) + 1


@dataclass(frozen=True)
class PlacementPlan:
    """Which node hosts each rank (index = MPI rank; rank 0 = master)."""

    task_nodes: tuple[str, ...]

    @property
    def tasks(self) -> int:
        return len(self.task_nodes)

    def tasks_per_node(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for name in self.task_nodes:
            counts[name] = counts.get(name, 0) + 1
        return counts

    def max_load(self) -> int:
        return max(self.tasks_per_node().values())

    def reassign(self, rank: int, node: str) -> "PlacementPlan":
        """A copy with ``rank`` hosted on ``node``.

        The elastic-membership update: when a joiner fills a vacant rank
        slot from a different machine (or a drained node's ranks move), the
        master keeps the reported placement truthful by re-pinning just
        that rank — every other assignment is untouched, so
        :func:`migration_count` against the original plan counts exactly
        the moves the re-balance made.
        """
        if not 0 <= rank < len(self.task_nodes):
            raise ValueError(
                f"rank {rank} outside the plan's {len(self.task_nodes)} tasks")
        nodes = list(self.task_nodes)
        nodes[rank] = node
        return PlacementPlan(tuple(nodes))


def place_tasks(platform: ClusterPlatform, tasks: int,
                memory_mb_per_task: int = TASK_MEMORY_CEIL_MB) -> PlacementPlan:
    """Balanced placement: round-robin over nodes sorted emptiest-first.

    Round-robin (rather than fill-first) spreads tasks so per-node load is
    minimized — the "minimize and balance the load on each node" strategy.
    Raises when the platform cannot host the job at all.
    """
    if tasks < 1:
        raise ValueError("tasks must be >= 1")
    nodes = platform.nodes_by_free_cores()
    capacity = {
        node.name: min(node.free_cores, node.free_memory_mb // memory_mb_per_task)
        for node in nodes
    }
    if sum(capacity.values()) < tasks:
        raise ValueError(
            f"platform cannot host {tasks} tasks "
            f"(capacity {sum(capacity.values())})"
        )
    assignment: list[str] = []
    remaining = dict(capacity)
    order = [node.name for node in nodes]
    while len(assignment) < tasks:
        progressed = False
        for name in order:
            if len(assignment) == tasks:
                break
            if remaining[name] > 0:
                assignment.append(name)
                remaining[name] -= 1
                progressed = True
        if not progressed:  # pragma: no cover - guarded by the capacity check
            raise RuntimeError("placement loop stalled")
    return PlacementPlan(tuple(assignment))


def plan_from_hosts(hosts: list[tuple[str, int]]) -> PlacementPlan:
    """Placement derived from a socket-backend host spec.

    The socket transport assigns contiguous rank blocks in host-spec order
    (worker i hosts ranks ``offset..offset+slots``), so the plan here is by
    construction the *actual* rank-to-host mapping of the run — the master
    reports real placement instead of simulating one.
    """
    task_nodes: list[str] = []
    for host, slots in hosts:
        if slots < 1:
            raise ValueError(f"host {host!r} must provide at least one slot")
        task_nodes.extend([host] * slots)
    if not task_nodes:
        raise ValueError("host spec is empty")
    return PlacementPlan(tuple(task_nodes))


def platform_from_hosts(hosts: list[tuple[str, int]],
                        memory_mb_per_slot: int = 4096) -> ClusterPlatform:
    """A :class:`ClusterPlatform` modelling a real host spec.

    One node per distinct host, with as many cores as the spec grants it —
    the socket backend's answer to ``cluster_uy()``: the master's placement
    and resource accounting run against the machines actually attached.
    """
    merged: dict[str, int] = {}
    for host, slots in hosts:
        merged[host] = merged.get(host, 0) + slots
    nodes = [
        ComputeNode(name=host, cores=slots,
                    memory_mb=slots * memory_mb_per_slot, storage_gb=0)
        for host, slots in merged.items()
    ]
    return ClusterPlatform(name="socket-hosts", nodes=nodes)


def migration_count(before: PlacementPlan, after: PlacementPlan) -> int:
    """How many ranks changed hosts between two plans.

    The re-balancer's objective function is "minimize migrations while
    respecting neighborhood locality"; this is the migration half, used by
    tests (and telemetry) to hold a re-balance to that contract.
    """
    if before.tasks != after.tasks:
        raise ValueError(
            f"plans differ in size ({before.tasks} vs {after.tasks}); "
            f"elastic membership fills vacant slots, it never resizes")
    return sum(1 for old, new in zip(before.task_nodes, after.task_nodes)
               if old != new)


def table2_resources(grid_rows: int, grid_cols: int) -> dict[str, int]:
    """Cores and memory for one grid size, as the paper's Table II reports.

    Cores = one per cell plus the master.  Memory = cores x 1843.2 MB,
    rounded up to a whole GB (matching 9216 and 18432 exactly; the paper's
    4x4 row requests 32768 MB, i.e. the same figure rounded to the next
    power-of-two block).
    """
    cores = grid_rows * grid_cols + 1
    raw = cores * PER_TASK_MEMORY_MB
    memory_mb = int(-(-raw // 1024) * 1024)  # ceil to GB
    return {"cores": cores, "memory_mb": memory_mb}
