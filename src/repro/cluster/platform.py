"""Compute nodes and the cluster they form."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComputeNode", "ClusterPlatform", "cluster_uy"]


@dataclass
class ComputeNode:
    """One server: a core count, memory and scratch storage budget.

    ``busy_cores``/``busy_memory_mb`` model background occupancy — Cluster-UY
    is collaborative and best-effort, so a node is rarely empty.
    """

    name: str
    cores: int
    memory_mb: int
    storage_gb: int
    busy_cores: int = 0
    busy_memory_mb: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_mb < 1 or self.storage_gb < 0:
            raise ValueError("node resources must be positive")
        self._check_busy()

    def _check_busy(self) -> None:
        if not 0 <= self.busy_cores <= self.cores:
            raise ValueError("busy cores outside node capacity")
        if not 0 <= self.busy_memory_mb <= self.memory_mb:
            raise ValueError("busy memory outside node capacity")

    @property
    def free_cores(self) -> int:
        return self.cores - self.busy_cores

    @property
    def free_memory_mb(self) -> int:
        return self.memory_mb - self.busy_memory_mb

    def occupy(self, cores: int, memory_mb: int) -> None:
        """Reserve resources (raises if they are not available)."""
        if cores > self.free_cores or memory_mb > self.free_memory_mb:
            raise ValueError(
                f"node {self.name}: cannot occupy {cores} cores/{memory_mb} MB "
                f"(free: {self.free_cores}/{self.free_memory_mb})"
            )
        self.busy_cores += cores
        self.busy_memory_mb += memory_mb

    def release(self, cores: int, memory_mb: int) -> None:
        """Return previously occupied resources."""
        self.busy_cores -= cores
        self.busy_memory_mb -= memory_mb
        self._check_busy()


@dataclass
class ClusterPlatform:
    """A named collection of nodes."""

    name: str
    nodes: list[ComputeNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    @property
    def free_cores(self) -> int:
        return sum(n.free_cores for n in self.nodes)

    def node(self, name: str) -> ComputeNode:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no node named {name!r}")

    def nodes_by_free_cores(self) -> list[ComputeNode]:
        """Nodes sorted emptiest-first (the placement heuristic's order)."""
        return sorted(self.nodes, key=lambda n: (-n.free_cores, n.name))


def cluster_uy(servers: int = 30, *, busy_fraction: float = 0.0,
               rng=None) -> ClusterPlatform:
    """The paper's platform: ``servers`` x (40 cores, 128 GB, 300 GB SSD).

    ``busy_fraction`` > 0 pre-occupies roughly that share of each node's
    cores (rounded), modelling the best-effort queue's background load;
    pass an ``rng`` to randomize per-node occupancy around the fraction.
    """
    if not 0 <= busy_fraction < 1:
        raise ValueError("busy_fraction must be in [0, 1)")
    nodes = []
    for i in range(servers):
        busy = int(round(40 * busy_fraction))
        if rng is not None and busy_fraction > 0:
            busy = int(min(39, max(0, rng.binomial(40, busy_fraction))))
        nodes.append(
            ComputeNode(
                name=f"node{i:02d}",
                cores=40,
                memory_mb=128 * 1024,
                storage_gb=300,
                busy_cores=busy,
                busy_memory_mb=int(128 * 1024 * busy / 40),
            )
        )
    return ClusterPlatform(name="Cluster-UY", nodes=nodes)
