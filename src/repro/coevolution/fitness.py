"""All-pairs fitness evaluation of a neighborhood's sub-populations.

Competitive coevolution scores every generator against every discriminator
in the sub-population (s x s pairings; the spatial structure keeps s small —
that is the point of the grid, Section II-B).  A generator's fitness is its
average generator-loss across discriminator opponents; a discriminator's is
its average discriminator-loss across generator opponents.  Lower is better
for both.

Two implementations produce bitwise-identical tables:

* the **batched kernel path** (default): all ``s`` latent batches drawn in
  one RNG call, the ``s`` fake batches plus the real batch stacked into one
  matrix, one graph-free forward per discriminator, and the whole ``s x s``
  loss table computed with vectorized NumPy
  (:func:`repro.nn.kernels.fused_fitness_table`);
* the **autograd loop** (fallback for arena-less networks, custom stacks or
  losses): per-network forwards and ``s**2`` Python-level loss calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.gan.networks import Discriminator, Generator
from repro.gan.sampling import sample_latent
from repro.nn import Tensor
from repro.nn.autograd import no_grad
from repro.nn.losses import GANLoss

__all__ = ["FitnessTable", "evaluate_subpopulations"]


@dataclass
class FitnessTable:
    """Loss matrices of one all-pairs evaluation.

    ``g_losses[i, j]`` / ``d_losses[i, j]`` are the generator/discriminator
    losses of generator ``i`` against discriminator ``j``.  The derived
    fitness vectors are cached on first access — ``Cell.step`` reads them
    several times per iteration (tournament selection, the report, the
    promotion) and the loss matrices are never mutated after construction.
    """

    g_losses: np.ndarray
    d_losses: np.ndarray

    @cached_property
    def generator_fitness(self) -> np.ndarray:
        """Per-generator fitness: mean generator-loss over opponents."""
        return self.g_losses.mean(axis=1)

    @cached_property
    def discriminator_fitness(self) -> np.ndarray:
        """Per-discriminator fitness: mean discriminator-loss over opponents."""
        return self.d_losses.mean(axis=0)

    @cached_property
    def best_generator(self) -> int:
        return int(self.generator_fitness.argmin())

    @cached_property
    def best_discriminator(self) -> int:
        return int(self.discriminator_fitness.argmin())


def evaluate_subpopulations(generators: Sequence[Generator],
                            discriminators: Sequence[Discriminator],
                            loss: GANLoss, real_batch: np.ndarray,
                            rng: np.random.Generator) -> FitnessTable:
    """Score all generator/discriminator pairings on one real batch.

    Dispatches to the batched kernel path when every network is
    kernel-eligible and the loss is one of the Mustangs trio; both paths
    consume the RNG stream identically and return bitwise-equal tables
    (asserted by ``tests/test_nn_kernels.py``), so mixed populations across
    cells or backends stay trajectory-identical.
    """
    if not generators or not discriminators:
        raise ValueError("sub-populations must be non-empty")
    from repro.nn import kernels

    table = kernels.fused_fitness_table(
        generators, discriminators, loss, real_batch, rng)
    if table is not None:
        return table
    return _evaluate_subpopulations_loop(
        generators, discriminators, loss, real_batch, rng)


def _evaluate_subpopulations_loop(generators: Sequence[Generator],
                                  discriminators: Sequence[Discriminator],
                                  loss: GANLoss, real_batch: np.ndarray,
                                  rng: np.random.Generator) -> FitnessTable:
    """The autograd reference implementation (and kernel fallback).

    Generator outputs and discriminator real-logits are computed once per
    network and reused across the s x s pairings; every pairing still costs
    one discriminator forward on the fake batch plus two Python-level loss
    evaluations — the overhead the batched path removes.
    """
    n = real_batch.shape[0]
    with no_grad():
        fakes = []
        for gen in generators:
            z = Tensor(sample_latent(n, gen.settings.latent_size, rng))
            fakes.append(gen(z))
        real = Tensor(real_batch)
        real_logits = [disc(real) for disc in discriminators]

        g_losses = np.empty((len(generators), len(discriminators)))
        d_losses = np.empty_like(g_losses)
        for j, disc in enumerate(discriminators):
            for i, fake in enumerate(fakes):
                fake_logits = disc(fake)
                g_losses[i, j] = loss.generator_loss(fake_logits).item()
                d_losses[i, j] = loss.discriminator_loss(real_logits[j], fake_logits).item()
    return FitnessTable(g_losses=g_losses, d_losses=d_losses)
