"""All-pairs fitness evaluation of a neighborhood's sub-populations.

Competitive coevolution scores every generator against every discriminator
in the sub-population (s x s pairings; the spatial structure keeps s small —
that is the point of the grid, Section II-B).  A generator's fitness is its
average generator-loss across discriminator opponents; a discriminator's is
its average discriminator-loss across generator opponents.  Lower is better
for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.gan.networks import Discriminator, Generator
from repro.gan.sampling import sample_latent
from repro.nn import Tensor
from repro.nn.autograd import no_grad
from repro.nn.losses import GANLoss

__all__ = ["FitnessTable", "evaluate_subpopulations"]


@dataclass
class FitnessTable:
    """Loss matrices of one all-pairs evaluation.

    ``g_losses[i, j]`` / ``d_losses[i, j]`` are the generator/discriminator
    losses of generator ``i`` against discriminator ``j``.
    """

    g_losses: np.ndarray
    d_losses: np.ndarray

    @property
    def generator_fitness(self) -> np.ndarray:
        """Per-generator fitness: mean generator-loss over opponents."""
        return self.g_losses.mean(axis=1)

    @property
    def discriminator_fitness(self) -> np.ndarray:
        """Per-discriminator fitness: mean discriminator-loss over opponents."""
        return self.d_losses.mean(axis=0)

    @property
    def best_generator(self) -> int:
        return int(self.generator_fitness.argmin())

    @property
    def best_discriminator(self) -> int:
        return int(self.discriminator_fitness.argmin())


def evaluate_subpopulations(generators: Sequence[Generator],
                            discriminators: Sequence[Discriminator],
                            loss: GANLoss, real_batch: np.ndarray,
                            rng: np.random.Generator) -> FitnessTable:
    """Score all generator/discriminator pairings on one real batch.

    Generator outputs and discriminator real-logits are computed once per
    network and reused across the s x s pairings — turning 2*s*s forward
    passes into 2*s plus the cheap cross terms, the dominant cost saving in
    the evaluation phase.
    """
    if not generators or not discriminators:
        raise ValueError("sub-populations must be non-empty")
    n = real_batch.shape[0]
    with no_grad():
        fakes = []
        for gen in generators:
            z = Tensor(sample_latent(n, gen.settings.latent_size, rng))
            fakes.append(gen(z))
        real = Tensor(real_batch)
        real_logits = [disc(real) for disc in discriminators]

        g_losses = np.empty((len(generators), len(discriminators)))
        d_losses = np.empty_like(g_losses)
        for j, disc in enumerate(discriminators):
            for i, fake in enumerate(fakes):
                fake_logits = disc(fake)
                g_losses[i, j] = loss.generator_loss(fake_logits).item()
                d_losses[i, j] = loss.discriminator_loss(real_logits[j], fake_logits).item()
    return FitnessTable(g_losses=g_losses, d_losses=d_losses)
