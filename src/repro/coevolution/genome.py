"""Genomes: the unit of exchange between grid cells.

A :class:`Genome` is one network's flat parameter vector plus the evolvable
hyperparameters that travel with it (learning rate, loss name).  Cells
exchange *pairs* of genomes (generator + discriminator) — the "center" of
the paper's Fig. 1 — through the communication layer, and materialize them
back into networks with :func:`pair_from_genomes`.

The paper's Table IV profiles "update genomes" as one of the four dominant
routines: that is :meth:`Genome.write_into` over the gathered vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ExperimentConfig
from repro.gan.networks import Discriminator, Generator
from repro.gan.pair import GANPair
from repro.nn import loss_by_name
from repro.nn.modules import Module
from repro.nn.serialize import parameters_to_vector, vector_to_parameters

__all__ = ["Genome", "genome_from_network", "genome_from_pair", "pair_from_genomes"]


@dataclass
class Genome:
    """Flat parameters + evolvable hyperparameters of one network.

    Picklable (NumPy vector + plain scalars) so it can cross process
    boundaries through the MPI layer unchanged.

    Aliasing/ownership contract: a **contiguous float vector is adopted
    as-is, in its own dtype** — the genome aliases the caller's buffer,
    never copies it, and never re-promotes it (a float32 arena snapshot
    stays float32 through exchange, wire, and checkpoint).  That is what
    makes the zero-copy exchange path work (a genome borrowing a network's
    live :class:`~repro.nn.arena.ParameterArena` slab costs nothing to
    build), but it also means a caller that keeps training the source
    network must either pass a copy or consume the genome before the next
    update (``write_into`` copies immediately, so the common
    borrow-then-write pattern is safe).  Non-contiguous or non-float input
    is normalized with exactly one copy (non-arrays and non-float dtypes
    become float64); :meth:`copy` always deep copies.  Contiguity is
    required so the vector rides the wire as a single out-of-band pickle-5
    buffer instead of being escaped (and re-copied) inside the pickle
    stream.
    """

    #: dtypes a genome vector may carry (the storage dtypes of the
    #: registered policies: float64/float32 arenas, float16 mixed16
    #: snapshots).
    FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32), np.dtype(np.float16))

    parameters: np.ndarray
    learning_rate: float
    loss_name: str

    def __post_init__(self) -> None:
        parameters = self.parameters
        if not isinstance(parameters, np.ndarray) or parameters.dtype not in self.FLOAT_DTYPES:
            parameters = np.asarray(parameters, dtype=np.float64)
        if not parameters.flags.c_contiguous:
            # One normalizing copy, only when actually needed — contiguous
            # float input keeps aliasing the caller's buffer (dtype intact).
            parameters = np.ascontiguousarray(parameters)
        self.parameters = parameters
        if self.parameters.ndim != 1:
            raise ValueError("genome parameters must be a flat vector")
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")

    def copy(self) -> "Genome":
        return Genome(self.parameters.copy(), self.learning_rate, self.loss_name)

    def write_into(self, network: Module) -> None:
        """Copy this genome's parameters into ``network`` (in place)."""
        vector_to_parameters(self.parameters, network)

    def distance_to(self, other: "Genome") -> float:
        """L2 distance between parameter vectors (diversity diagnostics)."""
        if self.parameters.shape != other.parameters.shape:
            raise ValueError("genomes of different architectures")
        return float(np.linalg.norm(self.parameters - other.parameters))

    @property
    def size(self) -> int:
        return self.parameters.shape[0]


def genome_from_network(network: Module, learning_rate: float, loss_name: str,
                        out: np.ndarray | None = None, *,
                        alias: bool = False) -> Genome:
    """Snapshot a network into a genome (optionally into a reused buffer).

    ``alias=True`` borrows the network's live parameter arena with zero
    copies — legal only when the genome is consumed (written or copied)
    before the network trains again; see the contract on :class:`Genome`.
    """
    return Genome(parameters_to_vector(network, out=out, alias=alias),
                  learning_rate, loss_name)


def genome_from_pair(pair: GANPair) -> tuple[Genome, Genome]:
    """Snapshot a GAN pair into ``(generator_genome, discriminator_genome)``."""
    lr = pair.learning_rate
    name = pair.loss.name
    return (
        genome_from_network(pair.generator, lr, name),
        genome_from_network(pair.discriminator, lr, name),
    )


def pair_from_genomes(generator_genome: Genome, discriminator_genome: Genome,
                      config: ExperimentConfig, rng: np.random.Generator) -> GANPair:
    """Materialize a GAN pair from two genomes.

    Optimizer state starts fresh (Lipizzaner does not migrate moments with
    genomes); the learning rate and loss travel with the generator genome.
    """
    generator = Generator(config.network, rng)
    discriminator = Discriminator(config.network, rng)
    generator_genome.write_into(generator)
    discriminator_genome.write_into(discriminator)
    pair = GANPair(
        generator,
        discriminator,
        loss_by_name(generator_genome.loss_name),
        config.mutation.optimizer,
        generator_genome.learning_rate,
    )
    return pair
