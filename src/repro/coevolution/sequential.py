"""Single-core sequential trainer — the paper's Table III baseline.

Runs all ``m x m`` cells in one process, one after another, with the exact
synchronous-exchange semantics of the distributed version: at the start of
every iteration the centers of *all* cells are snapshotted, and every cell's
step consumes the snapshots of its four neighbors.  This matches the
per-iteration ``allgather`` of the distributed implementation, so (with the
same seed) both produce identical genomes — asserted by the integration
tests — and the runtime comparison isolates parallelization effects only.

Cells train through the fused kernels of :mod:`repro.nn.kernels` here just
as they do on every distributed backend (bit-identical to autograd, with
automatic fallback), so enabling or disabling the kernels never changes
which trajectory this baseline measures — only how fast it runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import ExperimentConfig
from repro.coevolution.cell import Cell, CellReport
from repro.coevolution.genome import Genome
from repro.coevolution.grid import ToroidalGrid
from repro.data.dataset import ArrayDataset
from repro.data.synthetic import load_synthetic_mnist
from repro.data.transforms import to_tanh_range
from repro.profiling import NULL_TIMER, RoutineTimer, TimerSnapshot
from repro.runtime import pin_blas_threads
from repro.telemetry import bus as telemetry

__all__ = ["SequentialTrainer", "TrainingResult", "build_training_dataset"]


def build_training_dataset(config: ExperimentConfig, *, cache: bool = True) -> ArrayDataset:
    """Render/load the synthetic dataset and scale it to the tanh range."""
    raw = load_synthetic_mnist(config.dataset_size, seed=config.seed, cache=cache)
    return ArrayDataset(to_tanh_range(raw.images), raw.labels)


@dataclass
class TrainingResult:
    """Outcome of one full training run (either trainer)."""

    config: ExperimentConfig
    center_genomes: list[tuple[Genome, Genome]]
    mixture_weights: list[np.ndarray]
    cell_reports: list[list[CellReport]]
    wall_time_s: float
    timer_snapshots: list[TimerSnapshot] = field(default_factory=list)

    @property
    def grid(self) -> ToroidalGrid:
        coev = self.config.coevolution
        return ToroidalGrid(coev.grid_rows, coev.grid_cols)

    def best_cell_index(self) -> int:
        """Cell whose final generator fitness is best (lowest loss)."""
        finals = [reports[-1].best_generator_fitness if reports else float("inf")
                  for reports in self.cell_reports]
        return int(np.argmin(finals))

    def to_servable(self, cell: int | None = None):
        """Hand off to the serving layer: build a
        :class:`~repro.serving.registry.ServableEnsemble` from this run's
        final centers (``cell`` defaults to the fittest cell)."""
        from repro.serving.registry import ServableEnsemble

        return ServableEnsemble.from_training_result(self, cell=cell)


class SequentialTrainer:
    """Train the whole grid in one process (the single-core baseline)."""

    def __init__(self, config: ExperimentConfig, dataset: ArrayDataset | None = None):
        from repro import _deprecation

        _deprecation.warn_once(
            "SequentialTrainer",
            "direct SequentialTrainer use is deprecated; run it through "
            "repro.api.Experiment(config).backend('sequential').run()",
        )
        self.config = config
        self.grid = ToroidalGrid(config.coevolution.grid_rows, config.coevolution.grid_cols)
        self.dataset = dataset if dataset is not None else build_training_dataset(config)
        self.cells = [Cell(config, index, self.dataset)
                      for index in range(self.grid.cell_count)]
        self.start_iteration = 0

    @classmethod
    def from_checkpoint(cls, checkpoint, dataset: ArrayDataset | None = None
                        ) -> "SequentialTrainer":
        """Continue a run from a :class:`~repro.coevolution.checkpoint.TrainingCheckpoint`.

        ``run()`` will execute only the iterations the original
        configuration still owes (``checkpoint.remaining_iterations``).
        """
        trainer = cls(checkpoint.config, dataset)
        for cell, (g, d), weights in zip(
                trainer.cells, checkpoint.center_genomes, checkpoint.mixture_weights):
            cell.restore(g, d, weights, checkpoint.iteration)
        trainer.start_iteration = checkpoint.iteration
        return trainer

    def step_iteration(self, timers: list[RoutineTimer] | None = None,
                       on_exchange=None) -> list[CellReport]:
        """Run exactly one synchronous-exchange iteration over all cells.

        The exchange semantics match the distributed per-iteration
        ``allgather``: the centers of *all* cells are snapshotted first,
        then every cell steps against its neighbors' snapshots.
        ``on_exchange`` (optional) is called with the snapshot list between
        the two phases — the hook the :mod:`repro.api` run loop exposes.
        ``timers`` (optional, one per cell) record the "gather" section at
        the trainer level because here the exchange is a plain in-memory
        snapshot (its cost is what Table IV row 1 compares against MPI).
        """
        with_timing = timers is not None
        cell_timers = timers if timers is not None else [NULL_TIMER] * len(self.cells)
        snapshots: list[tuple[Genome, Genome]] = []
        # One exchange span per iteration: the in-memory snapshot is this
        # trainer's whole "gather" routine (the distributed backends record
        # theirs per cell inside MpiCommManager).
        with telemetry.span("exchange.gather"):
            for cell, timer in zip(self.cells, cell_timers):
                if with_timing:
                    with timer.section("gather"):
                        snapshots.append(cell.center_genomes())
                else:
                    snapshots.append(cell.center_genomes())
        if on_exchange is not None:
            on_exchange(snapshots)
        reports: list[CellReport] = []
        for index, (cell, timer) in enumerate(zip(self.cells, cell_timers)):
            neighbor_indices = self.grid.neighbors_of(index)
            if with_timing:
                with timer.section("gather"):
                    neighbors = [
                        (snapshots[j][0].copy(), snapshots[j][1].copy())
                        for j in neighbor_indices
                    ]
            else:
                neighbors = [snapshots[j] for j in neighbor_indices]
            reports.append(cell.step(neighbors, timer))
        return reports

    def result(self, wall_time_s: float,
               timers: list[RoutineTimer] | None = None) -> TrainingResult:
        """Assemble the :class:`TrainingResult` for the current cell state."""
        cell_timers = timers if timers is not None else [NULL_TIMER] * len(self.cells)
        return TrainingResult(
            config=self.config,
            center_genomes=[cell.center_genomes() for cell in self.cells],
            mixture_weights=[cell.mixture.weights.copy() for cell in self.cells],
            cell_reports=[cell.reports for cell in self.cells],
            wall_time_s=wall_time_s,
            timer_snapshots=[t.snapshot() for t in cell_timers],
        )

    def run(self, timer_factory=None, iterations: int | None = None) -> TrainingResult:
        """Run the configured number of iterations over all cells.

        ``timer_factory`` (optional) is called once per cell to produce its
        :class:`RoutineTimer` (see :meth:`step_iteration` for what it
        records).
        """
        # One core per process is the paper's execution model (Table II);
        # pinning BLAS makes the single-core baseline honestly single-core.
        pin_blas_threads(1)
        if iterations is not None:
            total_iterations = iterations
        else:
            total_iterations = self.config.coevolution.iterations - self.start_iteration
        timers: list[RoutineTimer] | None = (
            [timer_factory() for _ in self.cells] if timer_factory is not None else None
        )
        start = time.perf_counter()
        for _ in range(total_iterations):
            self.step_iteration(timers)
        return self.result(time.perf_counter() - start, timers)
