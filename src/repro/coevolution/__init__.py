"""The cellular competitive-coevolution core (Lipizzaner/Mustangs).

Two populations — generators and discriminators — live on a toroidal grid,
one pair per cell.  Every cell trains its pair against the sub-population
formed by its Moore-5 neighborhood (itself + W/N/E/S), with tournament
selection, Gaussian learning-rate mutation and (1+1)-ES mixture-weight
evolution (paper Section II-B, Table I).

The cell step in :mod:`repro.coevolution.cell` is *the same code object*
executed by the single-core baseline (:mod:`repro.coevolution.sequential`)
and by every slave of the distributed implementation
(:mod:`repro.parallel`); only the neighbor-exchange transport differs.
That is precisely the structure of the paper's system, and it is what makes
the Table III single-core-vs-distributed comparison apples-to-apples.
"""

from repro.coevolution.grid import ToroidalGrid, moore_neighborhood, von_neumann_neighborhood
from repro.coevolution.genome import Genome, genome_from_pair, pair_from_genomes
from repro.coevolution.selection import tournament_select
from repro.coevolution.mutation import mutate_learning_rate
from repro.coevolution.mixture import MixtureWeights, evolve_mixture, sample_mixture
from repro.coevolution.fitness import FitnessTable, evaluate_subpopulations
from repro.coevolution.cell import Cell, CellReport
from repro.coevolution.checkpoint import TrainingCheckpoint, load_checkpoint, save_checkpoint
from repro.coevolution.sequential import SequentialTrainer, TrainingResult

__all__ = [
    "ToroidalGrid",
    "moore_neighborhood",
    "von_neumann_neighborhood",
    "Genome",
    "genome_from_pair",
    "pair_from_genomes",
    "tournament_select",
    "mutate_learning_rate",
    "MixtureWeights",
    "evolve_mixture",
    "sample_mixture",
    "FitnessTable",
    "evaluate_subpopulations",
    "Cell",
    "CellReport",
    "TrainingCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "SequentialTrainer",
    "TrainingResult",
]
