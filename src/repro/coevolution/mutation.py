"""Hyperparameter mutation (paper Table I: Gaussian on the learning rate).

Table I specifies: optimizer Adam, initial learning rate 2e-4, mutation
rate 1e-4, mutation probability 0.5.  We read this as Lipizzaner does: with
probability 0.5 per epoch, the selected individual's learning rate receives
additive Gaussian noise with standard deviation 1e-4, clamped to stay
strictly positive.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mutate_learning_rate", "MIN_LEARNING_RATE"]

#: Lower clamp keeping mutated learning rates usable by the optimizers.
MIN_LEARNING_RATE = 1e-8


def mutate_learning_rate(learning_rate: float, rng: np.random.Generator, *,
                         mutation_rate: float, mutation_probability: float) -> float:
    """Return the (possibly) mutated learning rate.

    With probability ``mutation_probability``: add ``N(0, mutation_rate)``
    and clamp at :data:`MIN_LEARNING_RATE`.  Otherwise return the input
    unchanged.  One uniform draw and at most one normal draw are consumed
    from ``rng`` — the determinism tests count on that exact budget.
    """
    if learning_rate <= 0:
        raise ValueError("learning rate must be positive")
    if mutation_rate < 0:
        raise ValueError("mutation_rate must be >= 0")
    if not 0.0 <= mutation_probability <= 1.0:
        raise ValueError("mutation_probability must be in [0, 1]")
    if rng.uniform() >= mutation_probability:
        return learning_rate
    mutated = learning_rate + rng.normal(0.0, mutation_rate)
    return max(mutated, MIN_LEARNING_RATE)
