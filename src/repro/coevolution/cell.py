"""One grid cell: sub-populations, selection, mutation and training.

:class:`Cell` implements the per-iteration algorithm of Lipizzaner/Mustangs
(Section II-B) for a single cell.  The *identical* object runs inside the
single-core sequential trainer and inside every distributed slave — only the
source of ``neighbor_genomes`` differs (in-memory snapshot vs MPI allgather).

Per iteration (one call to :meth:`step`):

1. **update genomes** — materialize center + gathered neighbor genomes into
   the preallocated sub-population networks (profiled, Table IV row 3).
2. evaluate all s x s pairings on a batch (fitness table);
   tournament-select (k=2) the generator and discriminator to train.
3. **mutate** — Gaussian learning-rate mutation (Table I) and the
   (1+1)-ES step on the mixture weights (profiled, Table IV row 4).
4. **train** — for every batch of the iteration: one discriminator step
   against a randomly drawn generator opponent and one generator step
   against a randomly drawn discriminator opponent (profiled, Table IV
   row 2; the ``skip N disc. steps`` setting thins discriminator updates).
5. re-evaluate and promote the fittest individuals to be the new center.

Table IV row 2 ("train") dominates the single-core budget (~85% of the
wall time in ``benchmarks/results/table4.txt``); steps 2, 4 and 5 — the
fitness tables and the gradient steps — therefore run on the graph-free
fused kernels of :mod:`repro.nn.kernels` whenever the networks are
kernel-eligible: one batched forward per discriminator for the s x s
table, hand-derived backward straight into the arena gradient slabs, and
cache-blocked optimizer sweeps.  The kernels are bit-identical to the
autograd tape (same seed, same genome bytes) and fall back to it
automatically, so every backend — sequential, threaded, process, socket —
trains the same trajectory with or without them.

The RNG discipline matters: a cell consumes randomness only from its own
``rng`` (seeded from the experiment seed and the cell index), so the same
seed produces the same training trajectory no matter which backend runs the
cell or in which order cells execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ExperimentConfig
from repro.coevolution.fitness import evaluate_subpopulations
from repro.coevolution.genome import Genome, genome_from_network
from repro.coevolution.mixture import MixtureWeights, sample_mixture
from repro.coevolution.mutation import mutate_learning_rate
from repro.coevolution.selection import tournament_select
from repro.data.dataset import ArrayDataset, DataLoader
from repro.gan.networks import Discriminator, Generator
from repro.gan.pair import GANPair
from repro.nn import Tensor, kernels, loss_by_name
from repro.nn.autograd import no_grad
from repro.nn.losses import MUSTANGS_LOSSES
from repro.nn.serialize import parameters_to_vector, vector_to_parameters
from repro.profiling import NULL_TIMER, RoutineTimer
from repro.registry import dtype_policy
from repro.telemetry import bus as telemetry

__all__ = ["Cell", "CellReport", "NEIGHBORHOOD_SIZE"]

#: s = 5: the cell itself plus W, N, E, S (paper Fig. 1).
NEIGHBORHOOD_SIZE = 5


@dataclass
class CellReport:
    """Per-iteration statistics a cell reports upward."""

    iteration: int
    best_generator_fitness: float
    best_discriminator_fitness: float
    selected_generator: int
    selected_discriminator: int
    learning_rate: float
    mixture_weights: np.ndarray = field(repr=False)
    d_loss: float = float("nan")
    g_loss: float = float("nan")


def _cell_rng(seed: int, cell_index: int, stream: int) -> np.random.Generator:
    """Independent, order-insensitive RNG stream for one cell."""
    return np.random.default_rng(np.random.SeedSequence([seed, cell_index, stream]))


class Cell:
    """State and per-iteration logic of one grid cell."""

    def __init__(self, config: ExperimentConfig, cell_index: int, dataset: ArrayDataset,
                 neighborhood_size: int = NEIGHBORHOOD_SIZE):
        if neighborhood_size < 1:
            raise ValueError("neighborhood must contain at least the center")
        self.config = config
        self.cell_index = cell_index
        self.neighborhood_size = neighborhood_size
        self.rng = _cell_rng(config.seed, cell_index, stream=0)
        loader_rng = _cell_rng(config.seed, cell_index, stream=1)
        self.loader = DataLoader(dataset, config.training.batch_size, loader_rng)
        self._batches = iter(())

        # Mustangs: each cell draws its loss from the pool; Lipizzaner uses
        # the configured loss everywhere.
        if config.training.loss_function == "mustangs":
            loss_cls = MUSTANGS_LOSSES[int(self.rng.integers(len(MUSTANGS_LOSSES)))]
            self.loss_name = loss_cls.name
        else:
            self.loss_name = config.training.loss_function
        self.loss = loss_by_name(self.loss_name)

        # Center pair, freshly initialized per cell.
        init_rng = _cell_rng(config.seed, cell_index, stream=2)
        self.center = GANPair(
            Generator(config.network, init_rng),
            Discriminator(config.network, init_rng),
            self.loss,
            config.mutation.optimizer,
            config.mutation.initial_learning_rate,
        )

        # Preallocated sub-population networks; index 0 mirrors the center.
        build_rng = _cell_rng(config.seed, cell_index, stream=3)
        self._sub_generators = [Generator(config.network, build_rng)
                                for _ in range(neighborhood_size)]
        self._sub_discriminators = [Discriminator(config.network, build_rng)
                                    for _ in range(neighborhood_size)]
        #: learning rate travelling with each sub-population member.
        self._sub_lr = [config.mutation.initial_learning_rate] * neighborhood_size

        #: dtype that exchange snapshots (and hence wire payloads and
        #: checkpoints) are stored in — float16 under ``mixed16``, the
        #: compute dtype otherwise.
        self._storage_dtype = np.dtype(
            dtype_policy(getattr(config.network, "dtype", "float64")).storage)

        self.mixture = MixtureWeights.uniform(neighborhood_size)
        self.iteration = 0
        self.reports: list[CellReport] = []
        # Preallocated so the telemetry-off span() calls stay allocation-free.
        self._span_attrs = {"cell": cell_index}

    # -- genome exchange -------------------------------------------------------

    def center_genomes(self, *, alias: bool = False) -> tuple[Genome, Genome]:
        """Snapshot the center pair for exchange with neighbors.

        Default: one contiguous copy per network (safe to queue on any
        transport), quantized to the dtype policy's **storage** dtype —
        under ``mixed16`` a float16 snapshot of the float32 arena.  The
        quantization happens here, at the snapshot boundary, so every
        backend (sequential's in-memory snapshots and the wire payloads of
        the process/socket transports) exchanges bit-identical vectors.

        ``alias=True`` borrows the live parameter arenas with zero copies
        and no quantization — for strictly local, consume-immediately uses
        such as the sub-population update; never for payloads handed to a
        transport, whose sender threads serialize after this method
        returns.
        """
        lr = self.center.learning_rate
        g = genome_from_network(self.center.generator, lr, self.loss_name, alias=alias)
        d = genome_from_network(self.center.discriminator, lr, self.loss_name, alias=alias)
        if not alias and g.parameters.dtype != self._storage_dtype:
            g = Genome(g.parameters.astype(self._storage_dtype), lr, self.loss_name)
            d = Genome(d.parameters.astype(self._storage_dtype), lr, self.loss_name)
        return g, d

    def _update_subpopulations(self, neighbor_genomes: list[tuple[Genome, Genome]]) -> None:
        """Materialize center + neighbor genomes into the preallocated nets.

        This is the paper's profiled "update genomes" routine.  Excess
        neighbors are ignored; missing neighbors leave the (stale) previous
        parameters in place — mirroring the asynchronous tolerance of the
        original Lipizzaner.
        """
        # Borrow the center arenas (zero copies): each entry is written
        # into its sub-population slab before any training mutates the
        # center, so the aliasing window closes inside this method.
        own_g, own_d = self.center_genomes(alias=True)
        entries = [(own_g, own_d)] + list(neighbor_genomes)
        entries = entries[: self.neighborhood_size]
        for i, (g_genome, d_genome) in enumerate(entries):
            g_genome.write_into(self._sub_generators[i])
            d_genome.write_into(self._sub_discriminators[i])
            self._sub_lr[i] = g_genome.learning_rate

    # -- batching -----------------------------------------------------------------

    def _next_batch(self) -> np.ndarray:
        try:
            return next(self._batches)
        except StopIteration:
            self._batches = iter(self.loader)
            return next(self._batches)

    def _iteration_batches(self) -> list[np.ndarray]:
        count = self.config.training.batches_per_iteration or len(self.loader)
        return [self._next_batch() for _ in range(count)]

    # -- mixture fitness (cheap proxy used during evolution) -----------------------

    def _mixture_fitness(self, weights: MixtureWeights, batch_size: int) -> float:
        """Generator-loss of mixture samples under the center discriminator.

        A cheap stand-in for the end-of-run quality metric: low when the
        blended samples fool the current discriminator.  Runs on the fused
        kernel forward when available (bit-identical, no tape).
        """
        samples = sample_mixture(self._sub_generators, weights, batch_size, self.rng)
        fused = kernels.fused_generator_value(self.center.discriminator,
                                              self.loss, samples)
        if fused is not None:
            return fused
        with no_grad():
            logits = self.center.discriminator(Tensor(samples))
            return self.loss.generator_loss(logits).item()

    # -- the per-iteration algorithm ------------------------------------------------

    def step(self, neighbor_genomes: list[tuple[Genome, Genome]],
             timer: RoutineTimer = NULL_TIMER) -> CellReport:
        """Run one coevolutionary iteration; returns the iteration report."""
        config = self.config

        with timer.section("update_genomes"), \
                telemetry.span("cell.update_genomes", attrs=self._span_attrs):
            self._update_subpopulations(neighbor_genomes)

        # Selection batch + fitness table.
        with timer.section("train"), \
                telemetry.span("cell.train", attrs=self._span_attrs):
            selection_batch = self._next_batch()
            table = evaluate_subpopulations(
                self._sub_generators, self._sub_discriminators,
                self.loss, selection_batch, self.rng,
            )
            g_idx = tournament_select(
                table.generator_fitness, self.rng, config.coevolution.tournament_size
            )
            d_idx = tournament_select(
                table.discriminator_fitness, self.rng, config.coevolution.tournament_size
            )

        with timer.section("mutate"), \
                telemetry.span("cell.mutate", attrs=self._span_attrs):
            mutated_lr = mutate_learning_rate(
                self._sub_lr[g_idx], self.rng,
                mutation_rate=config.mutation.mutation_rate,
                mutation_probability=config.mutation.mutation_probability,
            )
            self._sub_lr[g_idx] = mutated_lr
            # (1+1)-ES on the mixture weights with the cheap proxy fitness.
            parent_fitness = self._mixture_fitness(self.mixture, config.training.batch_size)
            offspring = self.mixture.mutated(self.rng, config.coevolution.mixture_mutation_scale)
            offspring_fitness = self._mixture_fitness(offspring, config.training.batch_size)
            if offspring_fitness <= parent_fitness:
                self.mixture = offspring

        # Train the selected pair against randomly drawn opponents.
        with timer.section("train"), \
                telemetry.span("cell.train", attrs=self._span_attrs):
            generator = self._sub_generators[g_idx]
            discriminator = self._sub_discriminators[d_idx]
            pair = GANPair(generator, discriminator, self.loss,
                           config.mutation.optimizer, mutated_lr)
            pair.d_optimizer.learning_rate = self._sub_lr[d_idx]
            skip = max(1, config.training.skip_discriminator_steps)
            d_loss = g_loss = float("nan")
            for batch_no, batch in enumerate(self._iteration_batches()):
                if batch_no % skip == 0:
                    opponent_g = self._sub_generators[
                        int(self.rng.integers(self.neighborhood_size))
                    ]
                    d_loss = pair.train_discriminator_step(batch, self.rng, generator=opponent_g)
                opponent_d = self._sub_discriminators[
                    int(self.rng.integers(self.neighborhood_size))
                ]
                g_loss = pair.train_generator_step(batch.shape[0], self.rng,
                                                   discriminator=opponent_d)

            # Re-evaluate and promote the fittest members to center.
            replacement_batch = self._next_batch()
            final_table = evaluate_subpopulations(
                self._sub_generators, self._sub_discriminators,
                self.loss, replacement_batch, self.rng,
            )
            best_g = final_table.best_generator
            best_d = final_table.best_discriminator
            self._promote(best_g, best_d)

        self.iteration += 1
        report = CellReport(
            iteration=self.iteration,
            best_generator_fitness=float(final_table.generator_fitness[best_g]),
            best_discriminator_fitness=float(final_table.discriminator_fitness[best_d]),
            selected_generator=g_idx,
            selected_discriminator=d_idx,
            learning_rate=self.center.learning_rate,
            mixture_weights=self.mixture.weights.copy(),
            d_loss=d_loss,
            g_loss=g_loss,
        )
        self.reports.append(report)
        return report

    def _promote(self, g_idx: int, d_idx: int) -> None:
        """Copy the winning sub-population members into the center pair.

        Arena-to-arena: the winner's slab is borrowed (``alias=True``) and
        lands in the center's slab as one contiguous copy — no intermediate
        flatten buffer on this per-iteration path.
        """
        g_vec = parameters_to_vector(self._sub_generators[g_idx], alias=True)
        d_vec = parameters_to_vector(self._sub_discriminators[d_idx], alias=True)
        vector_to_parameters(g_vec, self.center.generator)
        vector_to_parameters(d_vec, self.center.discriminator)
        self.center.learning_rate = self._sub_lr[g_idx]

    # -- checkpoint restore ------------------------------------------------------

    def restore(self, generator_genome: Genome, discriminator_genome: Genome,
                mixture_weights: np.ndarray, iteration: int) -> None:
        """Restore this cell from checkpointed state (resume after a kill).

        Adopts the genomes' loss and learning rate, resets the iteration
        counter, and re-derives the RNG stream from ``(seed, cell,
        iteration)`` so the resumed run is deterministic per checkpoint.
        """
        if iteration < 0:
            raise ValueError("iteration must be >= 0")
        generator_genome.write_into(self.center.generator)
        discriminator_genome.write_into(self.center.discriminator)
        self.loss_name = generator_genome.loss_name
        self.loss = loss_by_name(self.loss_name)
        self.center.loss = self.loss
        self.center.learning_rate = generator_genome.learning_rate
        self.mixture = MixtureWeights(np.asarray(mixture_weights, dtype=np.float64))
        self.iteration = iteration
        self.rng = _cell_rng(self.config.seed, self.cell_index, stream=4 + iteration)

    # -- final artifacts ---------------------------------------------------------

    def subpopulation_generators(self) -> list[Generator]:
        """The s generators backing this cell's mixture (center first)."""
        return list(self._sub_generators)

    def sample_from_mixture(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` images from this cell's generator mixture."""
        return sample_mixture(self._sub_generators, self.mixture, n, rng or self.rng)
