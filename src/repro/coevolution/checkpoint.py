"""Training checkpoints: survive the cluster's wall-time limit.

The paper's jobs run under slurm with a **96-hour time limit** (Table I) on
a best-effort queue — a job killed at the limit loses all training state
unless it checkpoints.  This module snapshots everything the coevolutionary
state consists of — per-cell center genomes, mixture weights, the iteration
counter and the full configuration — into a single ``.npz`` and restores a
:class:`~repro.coevolution.sequential.SequentialTrainer` that continues
where the previous job stopped.

Two granularities live here:

* :class:`TrainingCheckpoint` — the whole grid at one iteration, written
  end-of-run or between jobs (the original wall-time-limit use case);
* :class:`CellSnapshot` / :class:`CellCheckpointStore` — periodic in-run
  per-cell snapshots streamed to the master during distributed training,
  the state the fault-recovery path resumes a lost cell from.

Resume semantics: cell RNG streams are re-derived from ``(seed, cell,
iteration)``, so a resumed run is deterministic given the checkpoint, though
not bit-identical to the uninterrupted run (the standard trade-off; noted in
DESIGN.md).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.config import ExperimentConfig
from repro.coevolution.genome import Genome

__all__ = [
    "TrainingCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "CellSnapshot",
    "CellCheckpointStore",
    "initial_cell_snapshot",
]

_FORMAT_VERSION = 1


@dataclass
class TrainingCheckpoint:
    """Everything needed to continue a run."""

    config: ExperimentConfig
    iteration: int
    center_genomes: list[tuple[Genome, Genome]]
    mixture_weights: list[np.ndarray]

    def __post_init__(self) -> None:
        cells = self.config.coevolution.cells
        if len(self.center_genomes) != cells:
            raise ValueError(
                f"checkpoint holds {len(self.center_genomes)} genomes for a "
                f"{cells}-cell grid"
            )
        if len(self.mixture_weights) != cells:
            raise ValueError("one mixture weight vector per cell required")
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")

    @property
    def remaining_iterations(self) -> int:
        return max(0, self.config.coevolution.iterations - self.iteration)

    def summary(self) -> str:
        """One line saying what this checkpoint holds — for CLI/registry logs."""
        coev = self.config.coevolution
        return (
            f"checkpoint v{_FORMAT_VERSION}: grid {coev.grid_rows}x{coev.grid_cols} "
            f"({coev.cells} cells), iteration {self.iteration}/{coev.iterations} "
            f"({self.remaining_iterations} remaining)"
        )

    def __repr__(self) -> str:
        return f"<TrainingCheckpoint {self.summary()}>"

    @classmethod
    def from_trainer(cls, trainer) -> "TrainingCheckpoint":
        """Snapshot a live :class:`SequentialTrainer`."""
        return cls(
            config=trainer.config,
            iteration=trainer.cells[0].iteration if trainer.cells else 0,
            center_genomes=[cell.center_genomes() for cell in trainer.cells],
            mixture_weights=[cell.mixture.weights.copy() for cell in trainer.cells],
        )


def save_checkpoint(path: str | os.PathLike, checkpoint: TrainingCheckpoint) -> None:
    """Write the checkpoint atomically as a compressed ``.npz``.

    The round trip is bit-exact in the genomes' own dtype: vectors are raw
    float arrays in the run's *storage* dtype (float64/float32 arenas
    as-is, float16 snapshots under ``mixed16``), npz compression is
    lossless and preserves dtype, and restoring writes them back through
    :meth:`Genome.write_into` — an in-place contiguous copy (widening
    where the arena's compute dtype is wider) into the network's slab.
    Genomes that *borrow* a live arena
    (``alias=True`` snapshots) are safe to pass here: the archive writer
    consumes them synchronously, before any further training.
    """
    metadata = {
        "version": _FORMAT_VERSION,
        "config": checkpoint.config.to_dict(),
        "iteration": checkpoint.iteration,
        "learning_rates": [
            [g.learning_rate, d.learning_rate] for g, d in checkpoint.center_genomes
        ],
        "loss_names": [g.loss_name for g, _ in checkpoint.center_genomes],
    }
    arrays: dict[str, np.ndarray] = {
        "metadata": np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8),
    }
    for index, (g, d) in enumerate(checkpoint.center_genomes):
        arrays[f"generator_{index}"] = g.parameters
        arrays[f"discriminator_{index}"] = d.parameters
        arrays[f"mixture_{index}"] = checkpoint.mixture_weights[index]
    tmp = f"{os.fspath(path)}.{os.getpid()}.tmp"
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    os.replace(tmp, path)


def load_checkpoint(path: str | os.PathLike) -> TrainingCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata"]).decode())
        except KeyError:
            raise ValueError(f"{path}: not a repro checkpoint (no metadata)") from None
        version = metadata.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported checkpoint version {version}")
        config = ExperimentConfig.from_dict(metadata["config"])
        cells = config.coevolution.cells
        genomes: list[tuple[Genome, Genome]] = []
        mixtures: list[np.ndarray] = []
        for index in range(cells):
            g_lr, d_lr = metadata["learning_rates"][index]
            loss_name = metadata["loss_names"][index]
            genomes.append((
                Genome(archive[f"generator_{index}"], g_lr, loss_name),
                Genome(archive[f"discriminator_{index}"], d_lr, loss_name),
            ))
            mixtures.append(np.asarray(archive[f"mixture_{index}"]))
    return TrainingCheckpoint(
        config=config,
        iteration=int(metadata["iteration"]),
        center_genomes=genomes,
        mixture_weights=mixtures,
    )


# -- periodic in-run per-cell snapshots (fault recovery) -----------------------


@dataclass(frozen=True)
class CellSnapshot:
    """One cell's resumable state after ``iteration`` completed iterations.

    Genomes are storage-dtype copies (the same quantization boundary as
    exchange payloads — see :meth:`Cell.center_genomes`), so taking a
    snapshot never perturbs training and the snapshot is safe to queue on
    any transport.
    """

    cell_index: int
    iteration: int
    generator_genome: Genome
    discriminator_genome: Genome
    mixture_weights: np.ndarray


class CellCheckpointStore:
    """Latest per-cell snapshot, kept in master memory (optionally on disk).

    Thread-safe; :meth:`update` keeps only the newest snapshot per cell.
    With a ``directory`` every accepted snapshot is also written atomically
    as ``cell_<index>.npz`` so a crashed *master* leaves recoverable state
    behind too.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self._lock = threading.Lock()
        self._latest: dict[int, CellSnapshot] = {}
        self._directory = None if directory is None else os.fspath(directory)
        if self._directory is not None:
            os.makedirs(self._directory, exist_ok=True)

    def update(self, snapshot: CellSnapshot) -> bool:
        """Keep ``snapshot`` iff it is newer than the stored one."""
        with self._lock:
            current = self._latest.get(snapshot.cell_index)
            if current is not None and current.iteration >= snapshot.iteration:
                return False
            self._latest[snapshot.cell_index] = snapshot
        if self._directory is not None:
            self._spill(snapshot)
        return True

    def latest(self, cell_index: int) -> CellSnapshot | None:
        with self._lock:
            return self._latest.get(cell_index)

    def iterations(self) -> dict[int, int]:
        """cell index -> iteration of the stored snapshot."""
        with self._lock:
            return {cell: s.iteration for cell, s in self._latest.items()}

    def _spill(self, snapshot: CellSnapshot) -> None:
        path = os.path.join(self._directory, f"cell_{snapshot.cell_index}.npz")
        g, d = snapshot.generator_genome, snapshot.discriminator_genome
        metadata = {
            "version": _FORMAT_VERSION,
            "cell_index": snapshot.cell_index,
            "iteration": snapshot.iteration,
            "learning_rates": [g.learning_rate, d.learning_rate],
            "loss_name": g.loss_name,
        }
        arrays = {
            "metadata": np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8),
            "generator": g.parameters,
            "discriminator": d.parameters,
            "mixture": snapshot.mixture_weights,
        }
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)


def initial_cell_snapshot(config: ExperimentConfig, cell_index: int,
                          neighborhood_size: int) -> CellSnapshot:
    """A cell's iteration-0 state, derived without a dataset.

    Replays :class:`~repro.coevolution.cell.Cell` construction exactly —
    same RNG streams, same mustangs loss draw, same storage-dtype
    quantization — so a rank that dies before its first in-run snapshot can
    still be recovered from deterministic initial state.  Guarded by a
    parity test against a real ``Cell``; keep the two in lockstep.
    """
    from repro.coevolution.cell import _cell_rng
    from repro.coevolution.genome import genome_from_network
    from repro.coevolution.mixture import MixtureWeights
    from repro.gan.networks import Discriminator, Generator
    from repro.nn.losses import MUSTANGS_LOSSES
    from repro.registry import dtype_policy

    rng = _cell_rng(config.seed, cell_index, stream=0)
    if config.training.loss_function == "mustangs":
        loss_cls = MUSTANGS_LOSSES[int(rng.integers(len(MUSTANGS_LOSSES)))]
        loss_name = loss_cls.name
    else:
        loss_name = config.training.loss_function
    init_rng = _cell_rng(config.seed, cell_index, stream=2)
    generator = Generator(config.network, init_rng)
    discriminator = Discriminator(config.network, init_rng)
    lr = config.mutation.initial_learning_rate
    g = genome_from_network(generator, lr, loss_name)
    d = genome_from_network(discriminator, lr, loss_name)
    storage = np.dtype(
        dtype_policy(getattr(config.network, "dtype", "float64")).storage)
    if g.parameters.dtype != storage:
        g = Genome(g.parameters.astype(storage), lr, loss_name)
        d = Genome(d.parameters.astype(storage), lr, loss_name)
    return CellSnapshot(
        cell_index=cell_index,
        iteration=0,
        generator_genome=g,
        discriminator_genome=d,
        mixture_weights=MixtureWeights.uniform(neighborhood_size).weights.copy(),
    )
