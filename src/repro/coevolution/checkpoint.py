"""Training checkpoints: survive the cluster's wall-time limit.

The paper's jobs run under slurm with a **96-hour time limit** (Table I) on
a best-effort queue — a job killed at the limit loses all training state
unless it checkpoints.  This module snapshots everything the coevolutionary
state consists of — per-cell center genomes, mixture weights, the iteration
counter and the full configuration — into a single ``.npz`` and restores a
:class:`~repro.coevolution.sequential.SequentialTrainer` that continues
where the previous job stopped.

Resume semantics: cell RNG streams are re-derived from ``(seed, cell,
iteration)``, so a resumed run is deterministic given the checkpoint, though
not bit-identical to the uninterrupted run (the standard trade-off; noted in
DESIGN.md).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.config import ExperimentConfig
from repro.coevolution.genome import Genome

__all__ = ["TrainingCheckpoint", "save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


@dataclass
class TrainingCheckpoint:
    """Everything needed to continue a run."""

    config: ExperimentConfig
    iteration: int
    center_genomes: list[tuple[Genome, Genome]]
    mixture_weights: list[np.ndarray]

    def __post_init__(self) -> None:
        cells = self.config.coevolution.cells
        if len(self.center_genomes) != cells:
            raise ValueError(
                f"checkpoint holds {len(self.center_genomes)} genomes for a "
                f"{cells}-cell grid"
            )
        if len(self.mixture_weights) != cells:
            raise ValueError("one mixture weight vector per cell required")
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")

    @property
    def remaining_iterations(self) -> int:
        return max(0, self.config.coevolution.iterations - self.iteration)

    def summary(self) -> str:
        """One line saying what this checkpoint holds — for CLI/registry logs."""
        coev = self.config.coevolution
        return (
            f"checkpoint v{_FORMAT_VERSION}: grid {coev.grid_rows}x{coev.grid_cols} "
            f"({coev.cells} cells), iteration {self.iteration}/{coev.iterations} "
            f"({self.remaining_iterations} remaining)"
        )

    def __repr__(self) -> str:
        return f"<TrainingCheckpoint {self.summary()}>"

    @classmethod
    def from_trainer(cls, trainer) -> "TrainingCheckpoint":
        """Snapshot a live :class:`SequentialTrainer`."""
        return cls(
            config=trainer.config,
            iteration=trainer.cells[0].iteration if trainer.cells else 0,
            center_genomes=[cell.center_genomes() for cell in trainer.cells],
            mixture_weights=[cell.mixture.weights.copy() for cell in trainer.cells],
        )


def save_checkpoint(path: str | os.PathLike, checkpoint: TrainingCheckpoint) -> None:
    """Write the checkpoint atomically as a compressed ``.npz``.

    The round trip is bit-exact in the genomes' own dtype: vectors are raw
    float arrays in the run's *storage* dtype (float64/float32 arenas
    as-is, float16 snapshots under ``mixed16``), npz compression is
    lossless and preserves dtype, and restoring writes them back through
    :meth:`Genome.write_into` — an in-place contiguous copy (widening
    where the arena's compute dtype is wider) into the network's slab.
    Genomes that *borrow* a live arena
    (``alias=True`` snapshots) are safe to pass here: the archive writer
    consumes them synchronously, before any further training.
    """
    metadata = {
        "version": _FORMAT_VERSION,
        "config": checkpoint.config.to_dict(),
        "iteration": checkpoint.iteration,
        "learning_rates": [
            [g.learning_rate, d.learning_rate] for g, d in checkpoint.center_genomes
        ],
        "loss_names": [g.loss_name for g, _ in checkpoint.center_genomes],
    }
    arrays: dict[str, np.ndarray] = {
        "metadata": np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8),
    }
    for index, (g, d) in enumerate(checkpoint.center_genomes):
        arrays[f"generator_{index}"] = g.parameters
        arrays[f"discriminator_{index}"] = d.parameters
        arrays[f"mixture_{index}"] = checkpoint.mixture_weights[index]
    tmp = f"{os.fspath(path)}.{os.getpid()}.tmp"
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    os.replace(tmp, path)


def load_checkpoint(path: str | os.PathLike) -> TrainingCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata"]).decode())
        except KeyError:
            raise ValueError(f"{path}: not a repro checkpoint (no metadata)") from None
        version = metadata.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported checkpoint version {version}")
        config = ExperimentConfig.from_dict(metadata["config"])
        cells = config.coevolution.cells
        genomes: list[tuple[Genome, Genome]] = []
        mixtures: list[np.ndarray] = []
        for index in range(cells):
            g_lr, d_lr = metadata["learning_rates"][index]
            loss_name = metadata["loss_names"][index]
            genomes.append((
                Genome(archive[f"generator_{index}"], g_lr, loss_name),
                Genome(archive[f"discriminator_{index}"], d_lr, loss_name),
            ))
            mixtures.append(np.asarray(archive[f"mixture_{index}"]))
    return TrainingCheckpoint(
        config=config,
        iteration=int(metadata["iteration"]),
        center_genomes=genomes,
        mixture_weights=mixtures,
    )
