"""Toroidal grid geometry and neighborhood structure (paper Fig. 1).

The training grid is an ``m x m`` torus; each cell's *neighborhood* is the
five-cell Moore structure used in the paper (the cell itself plus West,
North, East and South — s = 5).  Neighborhoods overlap, which is the
communication fabric of the whole method: a cell's updated center reaches
the four neighborhoods that contain it.

This module is pure geometry; the execution-level ``Grid`` class the paper
introduces (dynamic neighborhoods, decoupled from communications) lives in
:mod:`repro.parallel.grid` and delegates here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ToroidalGrid", "moore_neighborhood", "von_neumann_neighborhood"]

Coord = tuple[int, int]


def moore_neighborhood(row: int, col: int, rows: int, cols: int) -> list[Coord]:
    """Five-cell Moore neighborhood: center, West, North, East, South.

    Matches the paper's Fig. 1 (s=5); coordinates wrap toroidally.  Order is
    deterministic — center first, then W, N, E, S — and every consumer of
    sub-population indices relies on it.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if not (0 <= row < rows and 0 <= col < cols):
        raise ValueError(f"cell ({row}, {col}) outside {rows}x{cols} grid")
    return [
        (row, col),
        (row, (col - 1) % cols),   # West
        ((row - 1) % rows, col),   # North
        (row, (col + 1) % cols),   # East
        ((row + 1) % rows, col),   # South
    ]


def von_neumann_neighborhood(row: int, col: int, rows: int, cols: int,
                             radius: int = 1) -> list[Coord]:
    """Diamond (Manhattan-ball) neighborhood of the given radius, center first.

    Radius 1 coincides with :func:`moore_neighborhood` as used in the paper;
    larger radii serve the neighborhood-size ablation.
    """
    if radius < 0:
        raise ValueError("radius must be >= 0")
    if not (0 <= row < rows and 0 <= col < cols):
        raise ValueError(f"cell ({row}, {col}) outside {rows}x{cols} grid")
    seen: list[Coord] = [(row, col)]
    for dist in range(1, radius + 1):
        ring: list[Coord] = []
        for dr in range(-dist, dist + 1):
            dc = dist - abs(dr)
            ring.append(((row + dr) % rows, (col + dc) % cols))
            if dc != 0:
                ring.append(((row + dr) % rows, (col - dc) % cols))
        for coord in ring:
            if coord not in seen:
                seen.append(coord)
    return seen


@dataclass(frozen=True)
class ToroidalGrid:
    """An ``rows x cols`` torus with cell-index bookkeeping.

    Cells are numbered row-major: ``index = row * cols + col``.  The
    distributed implementation maps cell index ``i`` to MPI rank ``i + 1``
    (rank 0 is the master), so this ordering fixes the whole rank layout.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid dimensions must be positive")

    @property
    def cell_count(self) -> int:
        return self.rows * self.cols

    def coords_of(self, index: int) -> Coord:
        if not 0 <= index < self.cell_count:
            raise ValueError(f"cell index {index} outside 0..{self.cell_count - 1}")
        return divmod(index, self.cols)

    def index_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"cell ({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def all_coords(self) -> list[Coord]:
        return [(r, c) for r in range(self.rows) for c in range(self.cols)]

    def neighborhood(self, row: int, col: int) -> list[Coord]:
        """The paper's Moore-5 neighborhood of a cell, center first."""
        return moore_neighborhood(row, col, self.rows, self.cols)

    def neighborhood_indices(self, index: int) -> list[int]:
        """Moore-5 neighborhood as cell indices, center first."""
        row, col = self.coords_of(index)
        return [self.index_of(r, c) for r, c in self.neighborhood(row, col)]

    def neighbors_of(self, index: int) -> list[int]:
        """The four non-center neighbors of a cell (W, N, E, S order)."""
        return self.neighborhood_indices(index)[1:]

    def overlapping_neighborhoods(self, index: int) -> list[int]:
        """Indices of cells whose neighborhood contains ``index``.

        On a torus with the symmetric Moore-5 structure this equals the
        cell's own neighborhood — the reciprocity that lets the paper
        implement neighbor exchange as one allgather.  Computed explicitly
        (not by symmetry) so the property tests can assert the equivalence.
        """
        containing = []
        for other in range(self.cell_count):
            if index in self.neighborhood_indices(other):
                containing.append(other)
        return containing

    def degenerate_overlap(self) -> bool:
        """True when wraparound makes some neighbor coordinates coincide
        (grids with a dimension < 3, e.g. the paper's 2x2)."""
        return self.rows < 3 or self.cols < 3
