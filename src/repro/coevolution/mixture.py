"""Generator-mixture weights and their (1+1)-ES evolution.

Each neighborhood's generative model is a *mixture* of its s=5 generators:
sampling picks generator ``i`` with probability ``w_i``.  Lipizzaner evolves
``w`` with a (1+1)-ES — perturb with Gaussian noise of scale 0.01 (Table I:
"mixture mutation scale"), renormalize, and keep the offspring only if the
mixture's quality metric improves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.gan.networks import Generator
from repro.gan.sampling import generate_images

__all__ = ["MixtureWeights", "evolve_mixture", "sample_mixture"]


@dataclass
class MixtureWeights:
    """A probability vector over the neighborhood's generators."""

    weights: np.ndarray

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.weights.ndim != 1 or self.weights.size == 0:
            raise ValueError("weights must be a non-empty vector")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        total = self.weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.weights = self.weights / total

    @classmethod
    def uniform(cls, size: int) -> "MixtureWeights":
        if size < 1:
            raise ValueError("mixture needs at least one component")
        return cls(np.full(size, 1.0 / size))

    def mutated(self, rng: np.random.Generator, scale: float) -> "MixtureWeights":
        """Gaussian-perturbed copy, clipped to non-negative and renormalized."""
        noise = rng.normal(0.0, scale, size=self.weights.shape)
        perturbed = np.clip(self.weights + noise, 0.0, None)
        if perturbed.sum() <= 0:
            # Degenerate perturbation: fall back to the parent.
            return MixtureWeights(self.weights.copy())
        return MixtureWeights(perturbed)

    def copy(self) -> "MixtureWeights":
        return MixtureWeights(self.weights.copy())


def sample_mixture(generators: Sequence[Generator], mixture: MixtureWeights, n: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` images from the weighted mixture of generators."""
    if len(generators) != mixture.weights.size:
        raise ValueError("one weight per generator required")
    if n <= 0:
        if n < 0:
            raise ValueError("n must be >= 0")
        return np.empty((0, generators[0].settings.output_neurons))
    counts = rng.multinomial(n, mixture.weights)
    pieces = []
    for generator, count in zip(generators, counts):
        if count:
            pieces.append(generate_images(generator, int(count), rng))
    samples = np.concatenate(pieces, axis=0)
    rng.shuffle(samples)
    return samples


def evolve_mixture(mixture: MixtureWeights, fitness: Callable[[MixtureWeights], float],
                   rng: np.random.Generator, scale: float) -> tuple[MixtureWeights, float]:
    """One (1+1)-ES step: keep the mutated weights iff fitness improves.

    ``fitness`` is a loss (lower is better), e.g. negated classifier score
    or the Fréchet distance of the mixture's samples.  Returns the surviving
    weights and their fitness.
    """
    parent_fitness = fitness(mixture)
    offspring = mixture.mutated(rng, scale)
    offspring_fitness = fitness(offspring)
    if offspring_fitness <= parent_fitness:
        return offspring, offspring_fitness
    return mixture, parent_fitness
