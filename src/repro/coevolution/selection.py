"""Tournament selection (paper Table I: tournament size 2).

Fitness is a *loss*: lower is better throughout the coevolution package.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["tournament_select", "rank_by_fitness"]


def tournament_select(fitnesses: Sequence[float], rng: np.random.Generator,
                      tournament_size: int = 2) -> int:
    """Return the index of the tournament winner (minimal fitness).

    Draws ``tournament_size`` distinct competitors uniformly (or all of them
    when the population is smaller) and returns the best one.  Ties break
    toward the lower index, keeping selection deterministic given the draw.
    """
    n = len(fitnesses)
    if n == 0:
        raise ValueError("cannot select from an empty population")
    if tournament_size < 1:
        raise ValueError("tournament size must be >= 1")
    k = min(tournament_size, n)
    competitors = rng.choice(n, size=k, replace=False)
    competitors.sort()  # lower index wins ties
    best = competitors[0]
    best_fit = fitnesses[best]
    for idx in competitors[1:]:
        if fitnesses[idx] < best_fit:
            best, best_fit = idx, fitnesses[idx]
    return int(best)


def rank_by_fitness(fitnesses: Sequence[float]) -> list[int]:
    """Indices sorted best (lowest loss) to worst, stable for ties."""
    return sorted(range(len(fitnesses)), key=lambda i: (fitnesses[i], i))
