"""Table III — execution times of GAN training, single core vs distributed.

The paper's headline result: wall times for grids 2x2/3x3/4x4 on one core
versus the MPI implementation, and the speedup.  Paper values (minutes):

    grid   single core   distributed      speedup
    2x2        339.6      39.81 +- 0.01     8.53
    3x3        999.5      73.24 +- 2.56    13.65
    4x4       1920.0     126.68 +- 3.42    15.17

The regenerator runs the identical workload through the
:class:`~repro.api.Experiment` facade twice — ``sequential`` backend
(single core) and ``process`` backend (one rank per core) — and reports
the same row structure.  The *shape* to verify: the
distributed version wins everywhere, and speedup grows with grid size.
Absolute speedups are lower than the paper's at laptop scale because each
scaled-down run amortizes its fixed start-up (process spawn, communicator
setup) over far fewer iterations; the per-routine Table IV shows the
compute itself scaling near-linearly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.api import Experiment
from repro.config import ExperimentConfig
from repro.experiments.workloads import PAPER_GRIDS, bench_config, bench_repetitions

__all__ = ["Table3Row", "run", "run_one_grid", "format_table", "PAPER_VALUES"]

#: The paper's Table III (minutes).
PAPER_VALUES = {
    (2, 2): {"single_min": 339.6, "distributed_min": 39.81, "speedup": 8.53},
    (3, 3): {"single_min": 999.5, "distributed_min": 73.24, "speedup": 13.65},
    (4, 4): {"single_min": 1920.0, "distributed_min": 126.68, "speedup": 15.17},
}


@dataclass
class Table3Row:
    grid: tuple[int, int]
    single_core_s: float
    distributed_mean_s: float
    distributed_std_s: float
    paper_speedup: float
    distributed_samples: list[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.single_core_s / self.distributed_mean_s


def run_one_grid(config: ExperimentConfig, repetitions: int = 1,
                 backend: str = "process") -> Table3Row:
    """Measure one grid size: one sequential run, ``repetitions`` distributed."""
    grid = (config.coevolution.grid_rows, config.coevolution.grid_cols)
    # One dataset instance shared by every run: both substrates must consume
    # identical data for the wall-clock comparison to be apples-to-apples.
    dataset = Experiment(config).build_dataset()
    sequential = Experiment(config).dataset(dataset).backend("sequential").run()
    samples = []
    for _ in range(max(1, repetitions)):
        result = Experiment(config).dataset(dataset).backend(backend).run()
        samples.append(result.wall_time_s)
    return Table3Row(
        grid=grid,
        single_core_s=sequential.wall_time_s,
        distributed_mean_s=statistics.fmean(samples),
        distributed_std_s=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        paper_speedup=PAPER_VALUES.get(grid, {}).get("speedup", float("nan")),
        distributed_samples=samples,
    )


def run(repetitions: int | None = None, backend: str = "process") -> list[Table3Row]:
    """Regenerate the full table over the paper's three grid sizes."""
    reps = repetitions if repetitions is not None else bench_repetitions()
    return [run_one_grid(bench_config(r, c), reps, backend) for r, c in PAPER_GRIDS]


def format_table(rows: list[Table3Row]) -> str:
    header = (
        f"{'grid':<6} {'single core (s)':>16} {'distributed (s)':>20} "
        f"{'speedup':>8} {'paper speedup':>14}"
    )
    lines = ["TABLE III — EXECUTION TIMES OF GAN TRAINING", header, "-" * len(header)]
    for row in rows:
        dist = f"{row.distributed_mean_s:8.2f} ± {row.distributed_std_s:.2f}"
        lines.append(
            f"{row.grid[0]}x{row.grid[1]:<4} {row.single_core_s:>16.2f} {dist:>20} "
            f"{row.speedup:>8.2f} {row.paper_speedup:>14.2f}"
        )
    return "\n".join(lines)
