"""Table II — resources used per grid size.

Regenerates the cores/memory accounting from the placement model and
compares against the paper's numbers (5/10/17 cores; 9216/18432/32768 MB).
Also exercises the full placement path: submitting the request to the
simulated Cluster-UY scheduler and verifying it fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import (
    BestEffortScheduler,
    ResourceRequest,
    cluster_uy,
    place_tasks,
    table2_resources,
)
from repro.experiments.workloads import PAPER_GRIDS

__all__ = ["Table2Row", "run", "format_table"]

#: The paper's Table II values, keyed by grid size.
PAPER_VALUES = {
    (2, 2): {"cores": 5, "memory_mb": 9216},
    (3, 3): {"cores": 10, "memory_mb": 18432},
    (4, 4): {"cores": 17, "memory_mb": 32768},
}


@dataclass(frozen=True)
class Table2Row:
    grid: tuple[int, int]
    cores: int
    memory_mb: int
    paper_cores: int
    paper_memory_mb: int
    nodes_used: int
    max_node_load: int

    @property
    def cores_match(self) -> bool:
        return self.cores == self.paper_cores


def run(busy_fraction: float = 0.0) -> list[Table2Row]:
    """Compute the table, placing each job on a fresh simulated platform."""
    rows = []
    for grid in PAPER_GRIDS:
        resources = table2_resources(*grid)
        platform = cluster_uy(busy_fraction=busy_fraction)
        plan = place_tasks(platform, tasks=resources["cores"])
        # Also verify the slurm-like path accepts the request.
        scheduler = BestEffortScheduler(cluster_uy(busy_fraction=busy_fraction))
        request = ResourceRequest(
            tasks=resources["cores"],
            memory_mb_per_task=resources["memory_mb"] // resources["cores"],
            time_limit_hours=96.0,
            storage_gb=40,
        )
        job = scheduler.submit(request, runtime_hours=1.0)
        if job.state.value != "running":
            raise RuntimeError(f"Table II job for grid {grid} did not start")
        rows.append(
            Table2Row(
                grid=grid,
                cores=resources["cores"],
                memory_mb=resources["memory_mb"],
                paper_cores=PAPER_VALUES[grid]["cores"],
                paper_memory_mb=PAPER_VALUES[grid]["memory_mb"],
                nodes_used=len(plan.tasks_per_node()),
                max_node_load=plan.max_load(),
            )
        )
    return rows


def format_table(rows: list[Table2Row]) -> str:
    header = (
        f"{'grid':<6} {'cores':>6} {'paper':>6} {'memory (MB)':>12} "
        f"{'paper (MB)':>11} {'nodes':>6} {'max load':>9}"
    )
    lines = ["TABLE II — RESOURCES USED ON EACH EXECUTION", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.grid[0]}x{row.grid[1]:<4} {row.cores:>6} {row.paper_cores:>6} "
            f"{row.memory_mb:>12} {row.paper_memory_mb:>11} {row.nodes_used:>6} "
            f"{row.max_node_load:>9}"
        )
    return "\n".join(lines)
