"""Fig. 4 — execution-time comparison of the main routines (bar chart).

Fig. 4 plots the same data as Table IV: one bar pair (single-node vs
parallel) per routine.  The regenerator reuses the Table IV measurement and
emits the two series plus an ASCII bar rendering.
"""

from __future__ import annotations

from repro.config import ExperimentConfig
from repro.experiments import table4
from repro.profiling import ProfileRow, format_fig4_series

__all__ = ["run", "format_figure"]


def run(config: ExperimentConfig | None = None, backend: str = "process",
        rows: list[ProfileRow] | None = None) -> dict:
    """Build the Fig. 4 series (reusing precomputed Table IV rows if given)."""
    if rows is None:
        rows = table4.run(config, backend)
    series = format_fig4_series(rows)
    series["rows"] = rows
    return series


def _bar(value: float, maximum: float, width: int = 46) -> str:
    filled = 0 if maximum <= 0 else int(round(width * value / maximum))
    return "#" * filled


def format_figure(data: dict) -> str:
    maximum = max(data["single_core"] + data["distributed"]) or 1.0
    lines = ["FIG. 4 — EXECUTION TIME COMPARISON, SINGLE-NODE VS PARALLEL", ""]
    for routine, single, dist in zip(
            data["routines"], data["single_core"], data["distributed"]):
        lines.append(f"{routine:<16} single {single:8.2f}s |{_bar(single, maximum)}")
        lines.append(f"{'':<16} parall {dist:8.2f}s |{_bar(dist, maximum)}")
        lines.append("")
    return "\n".join(lines)
