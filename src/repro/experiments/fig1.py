"""Fig. 1 — the toroidal grid and its overlapping neighborhoods.

The paper's figure shows a 4x4 grid and two five-cell Moore neighborhoods
(N(1,3) wrapping around the torus, N(1,1) interior), illustrating how
overlap propagates center updates.  The regenerator produces the same
structure as data: every neighborhood, the overlap sets, and an ASCII
rendering of the two example neighborhoods.
"""

from __future__ import annotations

from repro.coevolution.grid import ToroidalGrid

__all__ = ["run", "format_figure"]


def run(rows: int = 4, cols: int = 4) -> dict:
    """Neighborhood structure of the paper's example grid."""
    grid = ToroidalGrid(rows, cols)
    neighborhoods = {
        (r, c): grid.neighborhood(r, c) for r in range(rows) for c in range(cols)
    }
    overlaps = {}
    for index in range(grid.cell_count):
        coords = grid.coords_of(index)
        overlaps[coords] = [grid.coords_of(j) for j in grid.overlapping_neighborhoods(index)]
    return {
        "grid": (rows, cols),
        "neighborhoods": neighborhoods,
        "overlaps": overlaps,
        # The two neighborhoods the paper's figure highlights:
        "example_interior": neighborhoods[(1, 1)],
        "example_wrapping": neighborhoods[(1, 3)],
    }


def _render(rows: int, cols: int, members: list[tuple[int, int]], center: tuple[int, int]) -> str:
    lines = []
    for r in range(rows):
        cells = []
        for c in range(cols):
            if (r, c) == center:
                cells.append("[C]")
            elif (r, c) in members:
                cells.append("[N]")
            else:
                cells.append(" . ")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def format_figure(data: dict) -> str:
    rows, cols = data["grid"]
    parts = [
        f"FIG. 1 — {rows}x{cols} TOROIDAL GRID, FIVE-CELL MOORE NEIGHBORHOODS",
        "",
        "Neighborhood N(1,1) (interior):",
        _render(rows, cols, data["example_interior"], data["example_interior"][0]),
        "",
        "Neighborhood N(1,3) (wraps around the torus):",
        _render(rows, cols, data["example_wrapping"], data["example_wrapping"][0]),
        "",
        "Overlap: each center appears in exactly 5 neighborhoods "
        "(its own + its four neighbors').",
    ]
    return "\n".join(parts)
