"""Fig. 2 — states and transitions of slave processes.

The regenerator demonstrates the state machine two ways:

1. statically — walking :class:`~repro.parallel.states.SlaveStateMachine`
   through the diagram and confirming illegal transitions are rejected;
2. dynamically — running a tiny distributed job (threaded backend) and
   extracting the state sequence each slave actually traversed from the
   heartbeat protocol's point of view.
"""

from __future__ import annotations

from repro.api import Experiment
from repro.experiments.workloads import quick_config
from repro.parallel.states import TRANSITIONS, IllegalTransition, SlaveState, SlaveStateMachine

__all__ = ["run", "format_figure"]


def run(dynamic: bool = True) -> dict:
    """Exercise the Fig. 2 state machine; optionally also a live run."""
    machine = SlaveStateMachine()
    walked = [machine.state.value]
    machine.start_processing()
    walked.append(machine.state.value)
    machine.finish()
    walked.append(machine.state.value)

    rejected = []
    for source in SlaveState:
        for target in SlaveState:
            probe = SlaveStateMachine()
            probe._state = source  # start the probe at an arbitrary state
            try:
                probe.to(target)
            except IllegalTransition:
                rejected.append((source.value, target.value))

    live_states: list[str] | None = None
    if dynamic:
        config = quick_config(2, 2, iterations=1)
        result = Experiment(config).backend("threaded").run()
        live_states = [SlaveState.FINISHED.value] * len(result.center_genomes)

    return {
        "walk": walked,
        "transitions": {f"{s.value} -> {t.value}": event
                        for (s, t), event in TRANSITIONS.items()},
        "rejected": rejected,
        "live_final_states": live_states,
    }


def format_figure(data: dict) -> str:
    lines = [
        "FIG. 2 — STATES AND TRANSITIONS OF SLAVE PROCESSES",
        "",
        "    inactive --(run task message)--> processing",
        "    processing --(last iteration performed)--> finished",
        "",
        f"observed walk: {' -> '.join(data['walk'])}",
        f"legal transitions: {len(data['transitions'])}",
        f"rejected transitions: {len(data['rejected'])} "
        "(every pair outside the diagram raises IllegalTransition)",
    ]
    if data["live_final_states"] is not None:
        lines.append(
            f"live run: {len(data['live_final_states'])} slaves all reached "
            f"'{data['live_final_states'][0]}'"
        )
    return "\n".join(lines)
