"""Shared workload definitions for the experiment regenerators.

The paper trains 200 iterations over full MNIST epochs on a cluster with a
96-hour limit; a laptop-scale reproduction keeps every *structural*
parameter of Table I (network shape, batch size 100, tournament size 2,
mutation settings, grid sizes) and scales only the iteration count and the
dataset volume.  Wall-clock ratios — the object of Tables III/IV — are
preserved because every phase (train / gather / update / mutate) shrinks by
the same factor.

Environment overrides (picked up by the benchmark harness):

* ``REPRO_BENCH_ITERATIONS`` — coevolutionary iterations per run (default 4)
* ``REPRO_BENCH_DATASET`` — dataset size (default 2000)
* ``REPRO_BENCH_BATCHES`` — batches per iteration (default 3)
* ``REPRO_BENCH_REPETITIONS`` — repetitions for Table III statistics (default 1)
"""

from __future__ import annotations

import os

from repro.config import ExperimentConfig, paper_table1_config

__all__ = ["bench_config", "quick_config", "bench_repetitions", "PAPER_GRIDS"]

#: The grid sizes evaluated by the paper (Tables II and III).
PAPER_GRIDS: tuple[tuple[int, int], ...] = ((2, 2), (3, 3), (4, 4))


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    parsed = int(value)
    if parsed < 1:
        raise ValueError(f"{name} must be >= 1, got {parsed}")
    return parsed


def bench_config(rows: int, cols: int, *, seed: int = 42) -> ExperimentConfig:
    """The benchmark workload for one grid size (Table I, scaled)."""
    import dataclasses

    scaled = paper_table1_config(rows, cols).scaled(
        iterations=_env_int("REPRO_BENCH_ITERATIONS", 4),
        dataset_size=_env_int("REPRO_BENCH_DATASET", 2000),
        batch_size=100,
        batches_per_iteration=_env_int("REPRO_BENCH_BATCHES", 3),
    )
    return dataclasses.replace(scaled, seed=seed)


def quick_config(rows: int = 2, cols: int = 2, *, seed: int = 42,
                 iterations: int = 2) -> ExperimentConfig:
    """A seconds-scale workload for integration tests."""
    import dataclasses

    scaled = paper_table1_config(rows, cols).scaled(
        iterations=iterations,
        dataset_size=400,
        batch_size=20,
        batches_per_iteration=2,
    )
    return dataclasses.replace(scaled, seed=seed)


def bench_repetitions() -> int:
    """Repetitions for Table III statistics (paper: 10; default here: 1)."""
    return _env_int("REPRO_BENCH_REPETITIONS", 1)
