"""Fig. 3 — flow of processing and communications, master vs slave.

The paper's flow diagram shows the master (main thread + heartbeat thread)
and a representative slave (main thread + execution thread) with their MPI
interactions.  The regenerator runs a small *traced* distributed job and
prints the merged, time-ordered event log; the expected event sequence of
the figure (node info -> run task -> grid assembly -> per-iteration
exchange+train -> results -> reduction) is checked programmatically.
"""

from __future__ import annotations

from repro.experiments.workloads import quick_config
from repro.api import Experiment
from repro.parallel.tracing import EventTrace

__all__ = ["run", "format_figure", "EXPECTED_SLAVE_SEQUENCE"]

#: Event order every slave must exhibit (the right-hand lane of Fig. 3).
EXPECTED_SLAVE_SEQUENCE = (
    "run task received",
    "assemble execution grid",
    "start training",
    "get results from neighbours",
    "train one iteration",
    "send results to master",
)

#: Event order of the master (the left-hand lane of Fig. 3).
EXPECTED_MASTER_SEQUENCE = (
    "node info gathered",
    "placement decided",
    "run tasks sent",
    "create heartbeat thread",
    "result received",
    "final results gathered",
)


def _subsequence(events: list[str], expected: tuple[str, ...]) -> bool:
    """True when ``expected`` appears within ``events`` in order."""
    position = 0
    for event in events:
        if position < len(expected) and event == expected[position]:
            position += 1
    return position == len(expected)


def run(rows: int = 2, cols: int = 2, backend: str = "threaded") -> dict:
    """Run a traced job and validate both lanes of the flow diagram."""
    config = quick_config(rows, cols, iterations=2)
    result = Experiment(config).backend(backend, trace=True).run()

    lanes: dict[str, list[str]] = {}
    for trace in result.traces:
        lanes[trace.actor] = [event.event for event in trace.events]

    master_ok = _subsequence(lanes.get("master", []), EXPECTED_MASTER_SEQUENCE)
    slaves_ok = {
        actor: _subsequence(events, EXPECTED_SLAVE_SEQUENCE)
        for actor, events in lanes.items()
        if actor.startswith("slave-")
    }
    return {
        "traces": result.traces,
        "lanes": lanes,
        "master_sequence_ok": master_ok,
        "slave_sequences_ok": slaves_ok,
        "merged": EventTrace.format_merged(result.traces),
    }


def format_figure(data: dict) -> str:
    lines = [
        "FIG. 3 — FLOW OF PROCESSING AND COMMUNICATIONS (MERGED EVENT TRACE)",
        "",
        data["merged"],
        "",
        f"master lane matches Fig. 3: {data['master_sequence_ok']}",
        f"slave lanes matching Fig. 3: "
        f"{sum(data['slave_sequences_ok'].values())}/{len(data['slave_sequences_ok'])}",
    ]
    return "\n".join(lines)
