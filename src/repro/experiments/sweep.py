"""Generic parameter-sweep harness with CSV output.

The evaluation methodology of the paper is a sweep (grid size x version,
ten repetitions, mean ± std).  This module generalizes that pattern so new
studies — iteration scaling, exchange modes, loss pools — are one
declaration instead of a bespoke script:

    sweep = Sweep(
        name="grid-scaling",
        parameters={"grid": [(2, 2), (3, 3)], "backend": ["process"]},
        run=my_measure_fn,          # dict -> dict of metrics
        repetitions=3,
    )
    rows = sweep.execute()
    sweep.write_csv("out.csv", rows)
"""

from __future__ import annotations

import csv
import itertools
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = ["Sweep", "SweepRow"]


@dataclass
class SweepRow:
    """One parameter combination with aggregated metrics."""

    parameters: dict[str, Any]
    metrics_mean: dict[str, float]
    metrics_std: dict[str, float]
    repetitions: int
    seconds: float

    def flat(self) -> dict[str, Any]:
        """Single flat mapping for CSV writing."""
        out: dict[str, Any] = dict(self.parameters)
        for name, value in self.metrics_mean.items():
            out[f"{name}_mean"] = value
        for name, value in self.metrics_std.items():
            out[f"{name}_std"] = value
        out["repetitions"] = self.repetitions
        out["seconds"] = self.seconds
        return out


@dataclass
class Sweep:
    """Cartesian-product sweep over named parameter lists."""

    name: str
    parameters: Mapping[str, Sequence[Any]]
    run: Callable[[dict[str, Any], int], Mapping[str, float]]
    """Called as ``run(combination, repetition_index)``; returns metrics."""
    repetitions: int = 1
    progress: Callable[[str], None] | None = None

    def __post_init__(self) -> None:
        if not self.parameters:
            raise ValueError("sweep needs at least one parameter")
        if any(len(values) == 0 for values in self.parameters.values()):
            raise ValueError("every parameter needs at least one value")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    def combinations(self) -> list[dict[str, Any]]:
        names = list(self.parameters)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.parameters[n] for n in names))
        ]

    def execute(self) -> list[SweepRow]:
        rows: list[SweepRow] = []
        for combo in self.combinations():
            if self.progress is not None:
                self.progress(f"{self.name}: {combo}")
            start = time.perf_counter()
            samples: list[Mapping[str, float]] = []
            for repetition in range(self.repetitions):
                metrics = dict(self.run(combo, repetition))
                if not metrics:
                    raise ValueError(f"run() returned no metrics for {combo}")
                samples.append(metrics)
            keys = set(samples[0])
            for sample in samples[1:]:
                if set(sample) != keys:
                    raise ValueError("runs returned inconsistent metric names")
            rows.append(SweepRow(
                parameters=combo,
                metrics_mean={
                    k: statistics.fmean(s[k] for s in samples) for k in sorted(keys)
                },
                metrics_std={
                    k: (statistics.stdev([s[k] for s in samples])
                        if len(samples) > 1 else 0.0)
                    for k in sorted(keys)
                },
                repetitions=self.repetitions,
                seconds=time.perf_counter() - start,
            ))
        return rows

    @staticmethod
    def write_csv(path, rows: list[SweepRow]) -> None:
        """Write aggregated rows as CSV (stringifying non-scalar params)."""
        if not rows:
            raise ValueError("nothing to write")
        flat_rows = [
            {k: (str(v) if isinstance(v, (tuple, list)) else v)
             for k, v in row.flat().items()}
            for row in rows
        ]
        fieldnames = list(flat_rows[0])
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(flat_rows)
