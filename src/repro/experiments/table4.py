"""Table IV — profiling of the most time-consuming routines (4x4 grid).

Paper values (minutes, 4x4 grid):

    routine          single core   distributed   acceleration   speedup
    gather                  19.4          19.4         0.0%       1.00
    train                  264.9          43.8        83.5%       6.05
    update genomes         199.8          16.8        91.6%      11.87
    mutate                  25.6          17.9        29.9%       1.43
    overall                509.6          97.9        80.8%       5.21

Shape to verify: ``train`` and ``update genomes`` dominate the single-core
budget and parallelize well; ``gather`` (the neighbor exchange) does *not*
speed up — it is the same communication either way (speedup ≈ 1); ``mutate``
gains less than the compute-heavy routines.

Single-core column: per-routine *sums* over all cells (all work on one
core).  Distributed column: per-routine *maxima* across slaves (they run
concurrently, so the slowest slave sets the wall time).
"""

from __future__ import annotations

from repro.api import Experiment
from repro.config import ExperimentConfig
from repro.experiments.workloads import bench_config
from repro.profiling import ProfileRow, format_table4, profile_rows

__all__ = ["run", "format_table", "PAPER_VALUES"]

#: The paper's Table IV (minutes).
PAPER_VALUES = {
    "gather": {"single": 19.4, "distributed": 19.4, "speedup": 1.00},
    "train": {"single": 264.9, "distributed": 43.8, "speedup": 6.05},
    "update genomes": {"single": 199.8, "distributed": 16.8, "speedup": 11.87},
    "mutate": {"single": 25.6, "distributed": 17.9, "speedup": 1.43},
    "overall": {"single": 509.6, "distributed": 97.9, "speedup": 5.21},
}


def run(config: ExperimentConfig | None = None,
        backend: str = "process") -> list[ProfileRow]:
    """Profile both versions on the 4x4 workload and build the table rows."""
    if config is None:
        config = bench_config(4, 4)
    dataset = Experiment(config).build_dataset()

    sequential = Experiment(config).dataset(dataset).backend("sequential").profile().run()
    single_profile = sequential.profile(parallel=False)

    distributed = Experiment(config).dataset(dataset).backend(backend).profile().run()
    distributed_profile = distributed.profile(parallel=True)

    return profile_rows(single_profile, distributed_profile)


def format_table(rows: list[ProfileRow]) -> str:
    lines = [
        "TABLE IV — PROFILING OF EXECUTION TIMES OF THE MOST CONSUMING ROUTINES",
        format_table4(rows),
        "",
        "paper (minutes, for reference):",
    ]
    for routine, values in PAPER_VALUES.items():
        lines.append(
            f"  {routine:<16} single={values['single']:>6.1f}  "
            f"distributed={values['distributed']:>6.1f}  speedup={values['speedup']:.2f}"
        )
    return "\n".join(lines)
