"""Regenerators for every table and figure of the paper's evaluation.

One module per artifact; each exposes a ``run(...)`` returning structured
rows/series and a ``format_...`` printer producing the paper's layout.  The
benchmark harness under ``benchmarks/`` calls these, and ``EXPERIMENTS.md``
records paper-versus-measured values.

===========  ====================================================  ==========================
Artifact     Content                                               Module
===========  ====================================================  ==========================
Table I      parameter settings of the trained GANs                :mod:`repro.experiments.table1`
Table II     resources used per grid size                          :mod:`repro.experiments.table2`
Table III    execution times + speedup, single-core vs distributed :mod:`repro.experiments.table3`
Table IV     profiling of the four dominant routines               :mod:`repro.experiments.table4`
Fig. 1       toroidal grid and overlapping neighborhoods           :mod:`repro.experiments.fig1`
Fig. 2       slave state machine                                   :mod:`repro.experiments.fig2`
Fig. 3       master/slave flow (threads + MPI messages)            :mod:`repro.experiments.fig3`
Fig. 4       bar chart of the Table IV routine times               :mod:`repro.experiments.fig4`
===========  ====================================================  ==========================
"""

from repro.experiments import fig1, fig2, fig3, fig4, table1, table2, table3, table4
from repro.experiments.workloads import bench_config, quick_config

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "bench_config",
    "quick_config",
]
