"""Table I — parameter settings of the trained GANs.

A configuration artifact rather than a measurement: the regenerator renders
the active :class:`~repro.config.ExperimentConfig` in the layout of the
paper's Table I and verifies the paper's values are the library defaults.
"""

from __future__ import annotations

from repro.config import ExperimentConfig, paper_table1_config

__all__ = ["rows", "format_table", "run"]

#: The values printed in the paper's Table I, keyed by (section, parameter).
PAPER_VALUES: dict[tuple[str, str], str] = {
    ("Network topology", "Network type"): "MLP",
    ("Network topology", "Input neurons"): "64",
    ("Network topology", "Number of hidden layers"): "2",
    ("Network topology", "Neurons per hidden layer"): "256",
    ("Network topology", "Output neurons"): "784",
    ("Network topology", "Activation function"): "tanh",
    ("Coevolutionary settings", "Iterations"): "200",
    ("Coevolutionary settings", "Population size per cell"): "1",
    ("Coevolutionary settings", "Tournament size"): "2",
    ("Coevolutionary settings", "Grid size"): "2x2 to 4x4",
    ("Coevolutionary settings", "Mixture mutation scale"): "0.01",
    ("Hyperparameter mutation", "Optimizer"): "Adam",
    ("Hyperparameter mutation", "Initial learning rate"): "0.0002",
    ("Hyperparameter mutation", "Mutation rate"): "0.0001",
    ("Hyperparameter mutation", "Mutation probability"): "0.5",
    ("Training settings", "Batch size"): "100",
    ("Training settings", "Skip N disc. steps"): "1",
    ("Execution settings", "Number of tasks"): "5 to 17",
    ("Execution settings", "Time limit"): "96 hours",
    ("Execution settings", "Temporary storage"): "40GB",
}


def rows(config: ExperimentConfig) -> list[tuple[str, str, str]]:
    """(section, parameter, value) triples for one configuration."""
    net, coev, mut, train, execu = (
        config.network, config.coevolution, config.mutation,
        config.training, config.execution,
    )
    return [
        ("Network topology", "Network type", net.network_type),
        ("Network topology", "Input neurons", str(net.latent_size)),
        ("Network topology", "Number of hidden layers", str(net.hidden_layers)),
        ("Network topology", "Neurons per hidden layer", str(net.hidden_neurons)),
        ("Network topology", "Output neurons", str(net.output_neurons)),
        ("Network topology", "Activation function", net.activation),
        ("Coevolutionary settings", "Iterations", str(coev.iterations)),
        ("Coevolutionary settings", "Population size per cell", str(coev.population_size)),
        ("Coevolutionary settings", "Tournament size", str(coev.tournament_size)),
        ("Coevolutionary settings", "Grid size", f"{coev.grid_rows}x{coev.grid_cols}"),
        ("Coevolutionary settings", "Mixture mutation scale", str(coev.mixture_mutation_scale)),
        ("Hyperparameter mutation", "Optimizer", mut.optimizer.capitalize()),
        ("Hyperparameter mutation", "Initial learning rate", str(mut.initial_learning_rate)),
        ("Hyperparameter mutation", "Mutation rate", str(mut.mutation_rate)),
        ("Hyperparameter mutation", "Mutation probability", str(mut.mutation_probability)),
        ("Training settings", "Batch size", str(train.batch_size)),
        ("Training settings", "Skip N disc. steps", str(train.skip_discriminator_steps)),
        ("Execution settings", "Number of tasks", str(execu.number_of_tasks)),
        ("Execution settings", "Time limit", f"{execu.time_limit_hours:.0f} hours"),
        ("Execution settings", "Temporary storage", f"{execu.temporary_storage_gb}GB"),
    ]


def format_table(config: ExperimentConfig) -> str:
    """Render the configuration in Table I's sectioned layout."""
    lines = ["TABLE I — PARAMETERS SETTINGS OF THE TRAINED GANS", ""]
    current_section = None
    for section, parameter, value in rows(config):
        if section != current_section:
            lines.append(section)
            current_section = section
        lines.append(f"  {parameter:<28} {value}")
    return "\n".join(lines)


def run() -> dict:
    """Regenerate Table I from the default (paper) configuration."""
    config = paper_table1_config()
    produced = {(s, p): v for s, p, v in rows(config)}
    matches = {
        key: produced.get(key) == value
        for key, value in PAPER_VALUES.items()
        # Ranged rows depend on the grid sweep, not one configuration:
        if key[1] not in ("Grid size", "Number of tasks")
    }
    return {
        "table": format_table(config),
        "matches_paper": matches,
        "all_match": all(matches.values()),
    }
