"""Parameter settings for cellular GAN training (Table I of the paper).

The paper fixes every hyperparameter of the trained GANs and of the
coevolutionary algorithm in its Table I.  This package exposes those settings
as validated dataclasses with JSON round-tripping, so that the master process
can broadcast one configuration object to every slave (Section III-B of the
paper: *"sharing the parameter configuration to be used in the execution with
all slave processes"*).
"""

from repro.config.settings import (
    ConfigError,
    CoevolutionSettings,
    ExecutionSettings,
    ExperimentConfig,
    HyperparameterMutationSettings,
    NetworkSettings,
    TrainingSettings,
    default_config,
    paper_table1_config,
)

__all__ = [
    "ConfigError",
    "NetworkSettings",
    "CoevolutionSettings",
    "HyperparameterMutationSettings",
    "TrainingSettings",
    "ExecutionSettings",
    "ExperimentConfig",
    "default_config",
    "paper_table1_config",
]
