"""Validated experiment configuration (paper Table I).

Every knob reported in Table I ("Parameters settings of the trained GANs") is
represented here, grouped exactly as the table groups them:

* *Network topology* — :class:`NetworkSettings`
* *Coevolutionary settings* — :class:`CoevolutionSettings`
* *Hyperparameter mutation* — :class:`HyperparameterMutationSettings`
* *Training settings* — :class:`TrainingSettings`
* *Execution settings* — :class:`ExecutionSettings`

:func:`paper_table1_config` returns the exact values from the paper;
:func:`default_config` returns a scaled-down variant suitable for laptop-scale
runs (fewer iterations, smaller dataset) that keeps every ratio intact.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.registry import BACKENDS, DTYPES, LOSSES


class ConfigError(ValueError):
    """Raised when a configuration value is outside its legal domain."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


@dataclass(frozen=True)
class NetworkSettings:
    """Network topology block of Table I.

    The paper trains multilayer perceptrons: a 64-neuron latent input, two
    hidden layers of 256 neurons, a 784-neuron (28x28) output and ``tanh``
    activations.  The discriminator mirrors the generator (784 -> hidden ->
    1 logit), as in the Lipizzaner reference implementation.
    """

    network_type: str = "MLP"
    latent_size: int = 64
    hidden_layers: int = 2
    hidden_neurons: int = 256
    output_neurons: int = 784
    activation: str = "tanh"
    dtype: str = "float64"
    """Precision policy name (validated against :data:`repro.registry.DTYPES`).

    ``float64`` is the bit-identical reference oracle; ``float32`` halves
    every slab, GEMM and wire frame; ``mixed16`` additionally stores genome
    snapshots/frames as float16 while computing in float32.
    """

    def __post_init__(self) -> None:
        _require(self.network_type in {"MLP"}, f"unsupported network type: {self.network_type!r}")
        _require(self.latent_size > 0, "latent_size must be positive")
        _require(self.hidden_layers >= 1, "hidden_layers must be >= 1")
        _require(self.hidden_neurons > 0, "hidden_neurons must be positive")
        _require(self.output_neurons > 0, "output_neurons must be positive")
        _require(
            self.activation in {"tanh", "relu", "leaky_relu", "sigmoid"},
            f"unsupported activation: {self.activation!r}",
        )
        _require(
            self.dtype in DTYPES,
            f"unsupported dtype policy: {self.dtype!r}; known: {sorted(DTYPES.known())}",
        )

    @property
    def image_side(self) -> int:
        """Side length of the square image the generator emits."""
        side = int(round(self.output_neurons ** 0.5))
        return side


@dataclass(frozen=True)
class CoevolutionSettings:
    """Coevolutionary settings block of Table I."""

    iterations: int = 200
    population_size: int = 1
    tournament_size: int = 2
    grid_rows: int = 3
    grid_cols: int = 3
    mixture_mutation_scale: float = 0.01

    def __post_init__(self) -> None:
        _require(self.iterations >= 1, "iterations must be >= 1")
        _require(self.population_size >= 1, "population_size must be >= 1")
        _require(self.tournament_size >= 1, "tournament_size must be >= 1")
        _require(self.grid_rows >= 1 and self.grid_cols >= 1, "grid must be at least 1x1")
        _require(self.mixture_mutation_scale >= 0.0, "mixture_mutation_scale must be >= 0")

    @property
    def grid_size(self) -> tuple[int, int]:
        return (self.grid_rows, self.grid_cols)

    @property
    def cells(self) -> int:
        return self.grid_rows * self.grid_cols


@dataclass(frozen=True)
class HyperparameterMutationSettings:
    """Hyperparameter mutation block of Table I.

    With probability ``mutation_probability`` the learning rate of the
    selected individual receives Gaussian noise with standard deviation
    ``mutation_rate`` (and is clamped to stay positive).  The optimizer named
    here is instantiated fresh whenever a genome is copied between cells.
    """

    optimizer: str = "adam"
    initial_learning_rate: float = 0.0002
    mutation_rate: float = 0.0001
    mutation_probability: float = 0.5

    def __post_init__(self) -> None:
        _require(
            self.optimizer in {"adam", "sgd", "rmsprop"},
            f"unsupported optimizer: {self.optimizer!r}",
        )
        _require(self.initial_learning_rate > 0, "initial_learning_rate must be positive")
        _require(self.mutation_rate >= 0, "mutation_rate must be >= 0")
        _require(
            0.0 <= self.mutation_probability <= 1.0,
            "mutation_probability must be in [0, 1]",
        )


@dataclass(frozen=True)
class TrainingSettings:
    """Training settings block of Table I."""

    batch_size: int = 100
    skip_discriminator_steps: int = 1
    loss_function: str = "bce"
    batches_per_iteration: int = 0
    """Batches consumed per coevolutionary iteration; 0 means the full epoch."""

    def __post_init__(self) -> None:
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.skip_discriminator_steps >= 0, "skip_discriminator_steps must be >= 0")
        # "mustangs" is a mode (each cell draws from the loss pool), every
        # other legal name is whatever the loss registry currently knows —
        # a registered custom loss is immediately a valid configuration.
        _require(
            self.loss_function == "mustangs" or self.loss_function in LOSSES,
            f"unsupported loss function: {self.loss_function!r}; known: "
            f"{sorted(LOSSES.known() | {'mustangs'})}",
        )
        _require(self.batches_per_iteration >= 0, "batches_per_iteration must be >= 0")


@dataclass(frozen=True)
class ExecutionSettings:
    """Execution settings block of Table I / Table II.

    ``number_of_tasks`` is the MPI world size: one master plus one slave per
    grid cell (5 for 2x2 up to 17 for 4x4 in the paper).  ``time_limit_hours``
    and ``temporary_storage_gb`` mirror the slurm request of the paper.
    """

    number_of_tasks: int = 10
    time_limit_hours: float = 96.0
    temporary_storage_gb: int = 40
    heartbeat_interval_s: float = 0.25
    backend: str = "process"

    def __post_init__(self) -> None:
        _require(self.number_of_tasks >= 2, "need at least one master and one slave")
        _require(self.time_limit_hours > 0, "time_limit_hours must be positive")
        _require(self.temporary_storage_gb >= 0, "temporary_storage_gb must be >= 0")
        _require(self.heartbeat_interval_s > 0, "heartbeat_interval_s must be positive")
        _require(
            self.backend in BACKENDS,
            f"unsupported backend: {self.backend!r}; known: "
            f"{sorted(BACKENDS.known())}",
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete configuration broadcast from the master to all slaves."""

    network: NetworkSettings = field(default_factory=NetworkSettings)
    coevolution: CoevolutionSettings = field(default_factory=CoevolutionSettings)
    mutation: HyperparameterMutationSettings = field(default_factory=HyperparameterMutationSettings)
    training: TrainingSettings = field(default_factory=TrainingSettings)
    execution: ExecutionSettings = field(default_factory=ExecutionSettings)
    dataset_size: int = 60_000
    seed: int = 42

    def __post_init__(self) -> None:
        _require(self.dataset_size >= self.training.batch_size, "dataset smaller than one batch")
        _require(self.seed >= 0, "seed must be non-negative")
        expected_tasks = self.coevolution.cells + 1
        _require(
            self.execution.number_of_tasks == expected_tasks,
            "number_of_tasks must equal grid cells + 1 (one master plus one slave "
            f"per cell); expected {expected_tasks}, got {self.execution.number_of_tasks}",
        )

    # -- derived quantities -------------------------------------------------

    @property
    def batches_per_epoch(self) -> int:
        return max(1, self.dataset_size // self.training.batch_size)

    def with_grid(self, rows: int, cols: int) -> "ExperimentConfig":
        """Return a copy configured for a ``rows x cols`` grid.

        Adjusts ``number_of_tasks`` to match (cells + 1) as Table II does.
        """
        coev = dataclasses.replace(self.coevolution, grid_rows=rows, grid_cols=cols)
        execu = dataclasses.replace(self.execution, number_of_tasks=rows * cols + 1)
        return dataclasses.replace(self, coevolution=coev, execution=execu)

    def with_dtype(self, dtype: str) -> "ExperimentConfig":
        """Return a copy under another precision policy (see ``DTYPES``)."""
        return dataclasses.replace(
            self, network=dataclasses.replace(self.network, dtype=dtype))

    def scaled(self, *, iterations: int, dataset_size: int, batch_size: int | None = None,
               batches_per_iteration: int | None = None) -> "ExperimentConfig":
        """Return a scaled-down copy keeping every structural parameter."""
        train = self.training
        if batch_size is not None or batches_per_iteration is not None:
            train = dataclasses.replace(
                self.training,
                batch_size=batch_size if batch_size is not None else self.training.batch_size,
                batches_per_iteration=(
                    batches_per_iteration
                    if batches_per_iteration is not None
                    else self.training.batches_per_iteration
                ),
            )
        coev = dataclasses.replace(self.coevolution, iterations=iterations)
        return dataclasses.replace(self, coevolution=coev, training=train, dataset_size=dataset_size)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentConfig":
        def build(klass, key):
            sub = payload.get(key, {})
            if not isinstance(sub, Mapping):
                raise ConfigError(f"section {key!r} must be a mapping")
            names = {f.name for f in dataclasses.fields(klass)}
            unknown = set(sub) - names
            if unknown:
                raise ConfigError(f"unknown keys in section {key!r}: {sorted(unknown)}")
            return klass(**sub)

        top = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - top
        if unknown:
            raise ConfigError(f"unknown top-level keys: {sorted(unknown)}")
        return cls(
            network=build(NetworkSettings, "network"),
            coevolution=build(CoevolutionSettings, "coevolution"),
            mutation=build(HyperparameterMutationSettings, "mutation"),
            training=build(TrainingSettings, "training"),
            execution=build(ExecutionSettings, "execution"),
            dataset_size=int(payload.get("dataset_size", 60_000)),
            seed=int(payload.get("seed", 42)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        return cls.from_dict(json.loads(text))


def paper_table1_config(grid_rows: int = 3, grid_cols: int = 3) -> ExperimentConfig:
    """The exact Table I configuration of the paper for a given grid size."""
    return ExperimentConfig(
        network=NetworkSettings(),
        coevolution=CoevolutionSettings(grid_rows=grid_rows, grid_cols=grid_cols),
        mutation=HyperparameterMutationSettings(),
        training=TrainingSettings(),
        execution=ExecutionSettings(number_of_tasks=grid_rows * grid_cols + 1),
        dataset_size=60_000,
        seed=42,
    )


def default_config(grid_rows: int = 2, grid_cols: int = 2, *, seed: int = 42) -> ExperimentConfig:
    """A laptop-scale configuration: same structure, scaled-down workload."""
    scaled = paper_table1_config(grid_rows, grid_cols).scaled(
        iterations=4, dataset_size=2_000, batch_size=50, batches_per_iteration=4
    )
    return dataclasses.replace(scaled, seed=seed)
