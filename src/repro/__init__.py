"""repro — parallel/distributed cellular coevolutionary GAN training.

A from-scratch reproduction of *"Parallel/distributed implementation of
cellular training for generative adversarial neural networks"* (Perez,
Nesmachnow, Toutouh, Hemberg, O'Reilly — IEEE IPDPS Workshops / PDCO 2020,
arXiv:2004.04633), including every substrate the paper depends on:

* :mod:`repro.nn` — NumPy autograd + MLP library (PyTorch substitute);
* :mod:`repro.data` — synthetic MNIST renderer + loaders (MNIST substitute);
* :mod:`repro.gan` — the Table I generator/discriminator pairs;
* :mod:`repro.metrics` — classifier score / FID / mode coverage;
* :mod:`repro.coevolution` — the Lipizzaner/Mustangs cellular algorithm and
  the single-core baseline trainer;
* :mod:`repro.mpi` — message-passing runtime with an mpi4py-style API
  (threads or forked processes);
* :mod:`repro.cluster` — simulated HPC platform (Cluster-UY substitute);
* :mod:`repro.parallel` — **the paper's contribution**: the master-slave
  distributed implementation (CommManager, Grid, heartbeats, two-thread
  slaves);
* :mod:`repro.profiling` — the Table IV routine profiler;
* :mod:`repro.telemetry` — the span/counter bus across train, exchange,
  transport and serving, with per-rank aggregation and Perfetto/Prometheus
  export (``REPRO_TELEMETRY=off|basic|trace``, ``repro run --trace``);
* :mod:`repro.experiments` — regenerators for every table and figure;
* :mod:`repro.serving` — batched, cached inference serving trained
  generator ensembles (model registry, request-coalescing engine, sample
  pool, stats-reporting server);
* :mod:`repro.api` — **the front door**: the :class:`~repro.api.Experiment`
  facade over every execution substrate, with pluggable
  backend/dataset/loss registries and a callback-driven run loop.

Quickstart::

    from repro import Experiment

    result = (Experiment()              # laptop-scale 2x2 default config
              .grid(2, 2)
              .backend("process")       # or "sequential" / "threaded" —
              .run())                   # same seed => identical genomes
    print(result.summary())
    result.save_checkpoint("model.npz")

Serving a finished run::

    from repro import GeneratorServer

    with GeneratorServer(result.to_servable()) as server:
        images = server.request(64, seed=7).images

Custom scenarios plug in by name — register a loss, a dataset or a whole
execution backend and select it from the same facade::

    from repro.api import LOSSES

    LOSSES.register("wgan", MyWassersteinLoss)
    Experiment().loss("wgan").run()

The pre-facade entry points (:class:`SequentialTrainer`,
:class:`DistributedRunner`) remain exported and behave identically, but
direct construction is deprecated in favor of :class:`Experiment`.
"""

# The runtime concurrency checker must patch the threading factories before
# any repro module creates a lock, so this runs first (no-op unless
# REPRO_LOCKCHECK is set — policy in repro.runtime).
from repro.analysis import lockcheck as _lockcheck

_lockcheck.install_if_enabled()

from repro.api import Experiment, RunResult
from repro.config import ExperimentConfig, default_config, paper_table1_config
from repro.coevolution import SequentialTrainer, TrainingResult
from repro.parallel import DistributedResult, DistributedRunner
from repro.registry import BACKENDS, DATASETS, LOSSES
from repro.runtime import pin_blas_threads
from repro.serving import GeneratorServer, ModelRegistry, ServableEnsemble

__version__ = "1.2.0"

__all__ = [
    "Experiment",
    "RunResult",
    "ExperimentConfig",
    "default_config",
    "paper_table1_config",
    "SequentialTrainer",
    "TrainingResult",
    "DistributedRunner",
    "DistributedResult",
    "BACKENDS",
    "DATASETS",
    "LOSSES",
    "pin_blas_threads",
    "ModelRegistry",
    "ServableEnsemble",
    "GeneratorServer",
    "__version__",
]
