"""repro — parallel/distributed cellular coevolutionary GAN training.

A from-scratch reproduction of *"Parallel/distributed implementation of
cellular training for generative adversarial neural networks"* (Perez,
Nesmachnow, Toutouh, Hemberg, O'Reilly — IEEE IPDPS Workshops / PDCO 2020,
arXiv:2004.04633), including every substrate the paper depends on:

* :mod:`repro.nn` — NumPy autograd + MLP library (PyTorch substitute);
* :mod:`repro.data` — synthetic MNIST renderer + loaders (MNIST substitute);
* :mod:`repro.gan` — the Table I generator/discriminator pairs;
* :mod:`repro.metrics` — classifier score / FID / mode coverage;
* :mod:`repro.coevolution` — the Lipizzaner/Mustangs cellular algorithm and
  the single-core baseline trainer;
* :mod:`repro.mpi` — message-passing runtime with an mpi4py-style API
  (threads or forked processes);
* :mod:`repro.cluster` — simulated HPC platform (Cluster-UY substitute);
* :mod:`repro.parallel` — **the paper's contribution**: the master-slave
  distributed implementation (CommManager, Grid, heartbeats, two-thread
  slaves);
* :mod:`repro.profiling` — the Table IV routine profiler;
* :mod:`repro.experiments` — regenerators for every table and figure;
* :mod:`repro.serving` — batched, cached inference serving trained
  generator ensembles (model registry, request-coalescing engine, sample
  pool, stats-reporting server).

Quickstart::

    from repro import default_config, SequentialTrainer, DistributedRunner

    config = default_config(2, 2)           # 2x2 grid, laptop-scale workload
    result = DistributedRunner(config).run()  # 5 ranks: 1 master + 4 slaves

Serving a finished run::

    from repro import GeneratorServer

    with GeneratorServer(result.to_servable()) as server:
        images = server.request(64, seed=7).images
"""

from repro.config import ExperimentConfig, default_config, paper_table1_config
from repro.coevolution import SequentialTrainer, TrainingResult
from repro.parallel import DistributedResult, DistributedRunner
from repro.runtime import pin_blas_threads
from repro.serving import GeneratorServer, ModelRegistry, ServableEnsemble

__version__ = "1.1.0"

__all__ = [
    "ExperimentConfig",
    "default_config",
    "paper_table1_config",
    "SequentialTrainer",
    "TrainingResult",
    "DistributedRunner",
    "DistributedResult",
    "pin_blas_threads",
    "ModelRegistry",
    "ServableEnsemble",
    "GeneratorServer",
    "__version__",
]
