"""Command-line interface: ``python -m repro <command>``.

A thin shell over :mod:`repro.api` — every command routes through the
:class:`~repro.api.Experiment` facade (or its checkpoint helpers), and every
training default comes from :func:`repro.config.default_config`, the single
source of truth.

Commands
--------

``info``
    Print the library version, the paper being reproduced, and the active
    platform model.
``run``
    Train a grid: ``python -m repro run --grid 3x3 --backend process
    --iterations 4 --dataset-size 2000 [--checkpoint out.npz]``.
``resume``
    Continue from a checkpoint: ``python -m repro resume out.npz``.
``config``
    Print the resolved experiment configuration as JSON, or validate a
    saved one: ``python -m repro config [--from-json PATH]``.
``table``
    Regenerate a paper table: ``python -m repro table 1|2|3|4``.
``fig``
    Regenerate a paper figure: ``python -m repro fig 1|2|3|4``.
``serve``
    Load a checkpoint into the serving stack and run a request-replay load
    test: ``python -m repro serve --checkpoint out.npz --requests 200``.
``sample``
    One-shot generation from a checkpoint to ``.npz``:
    ``python -m repro sample --checkpoint out.npz --n 64 --out images.npz``.
``worker``
    Attach this machine to a socket-backend run:
    ``python -m repro worker --connect coordinator:5555 --slots 4``.
    The coordinator side is ``repro run --backend socket --hosts ...``.
    With ``--join``, attach to an *already running* job through the live
    rendezvous, filling a vacant rank slot (a dead or drained worker's).
    SIGTERM/SIGINT drain the worker gracefully: its cells are
    checkpointed and handed off, then it exits 0.
``drain``
    Ask a live socket-backend run to release one rank gracefully:
    ``python -m repro drain 3 --connect coordinator:5555``.  The rank
    checkpoints its cells, hands them off, and its worker exits cleanly.
``trace``
    Digest a Perfetto trace written by ``repro run --trace out.json``:
    per-routine totals, comm/compute overlap, slowest cells.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _parse_grid(text: str) -> tuple[int, int]:
    try:
        rows, cols = text.lower().split("x")
        parsed = (int(rows), int(cols))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"grid must look like '3x3', got {text!r}") from None
    if parsed[0] < 1 or parsed[1] < 1:
        raise argparse.ArgumentTypeError("grid dimensions must be >= 1")
    return parsed


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """The training knobs, defaulted from ``default_config()`` — one source.

    ``repro run`` and ``repro config`` share these so what ``config``
    prints is exactly what ``run`` would execute.
    """
    from repro.api.experiment import DEFAULT_DATASET
    from repro.config import default_config
    from repro.registry import BACKENDS, DATASETS, DTYPES, LOSSES

    defaults = default_config()
    parser.add_argument("--grid", type=_parse_grid, metavar="RxC",
                        default=defaults.coevolution.grid_size)
    parser.add_argument("--backend", choices=sorted(BACKENDS.known()),
                        default=defaults.execution.backend)
    parser.add_argument("--iterations", type=int,
                        default=defaults.coevolution.iterations)
    parser.add_argument("--dataset-size", type=int, default=defaults.dataset_size)
    parser.add_argument("--batch-size", type=int,
                        default=defaults.training.batch_size)
    parser.add_argument("--batches-per-iteration", type=int,
                        default=defaults.training.batches_per_iteration)
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--loss", choices=sorted(LOSSES.known() | {"mustangs"}),
                        default=defaults.training.loss_function)
    parser.add_argument("--dtype", choices=sorted(DTYPES.known()),
                        default=defaults.network.dtype,
                        help="dtype policy: float64 is the bit-identical "
                             "reference, float32 roughly doubles training "
                             "throughput, mixed16 additionally halves "
                             "genome exchange/checkpoint bytes")
    parser.add_argument("--dataset", choices=sorted(DATASETS.known()),
                        default=DEFAULT_DATASET,
                        help="training corpus (from the dataset registry)")
    parser.add_argument("--exchange", choices=("neighbors", "allgather", "async"),
                        default="neighbors")
    parser.add_argument("--hosts", metavar="HOST:SLOTS,...",
                        help="socket backend only: where the ranks run, e.g. "
                             "'nodeA:5,nodeB:4' (localhost entries are "
                             "spawned automatically; slots must sum to "
                             "cells + 1)")
    parser.add_argument("--bind", metavar="HOST:PORT",
                        help="socket backend only: coordinator listen "
                             "address (default 127.0.0.1, ephemeral port; "
                             "bind 0.0.0.0:PORT for remote workers)")
    parser.add_argument("--token", metavar="TOKEN", dest="token",
                        help="socket backend only: fixed rendezvous token "
                             "(default: generated per run); share it with "
                             "'repro worker --join' and 'repro drain'")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel/distributed cellular GAN training "
                    "(reproduction of Perez et al., IPDPS/PDCO 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and platform information")

    run = sub.add_parser("run", help="train a grid of GANs")
    _add_experiment_arguments(run)
    run.add_argument("--fault-policy", choices=("abort", "degrade", "recover"),
                     default="abort",
                     help="what to do when a rank dies mid-run: abort the "
                          "survivors (default), finish with the dead cells "
                          "frozen at their last checkpoint, or migrate the "
                          "dead cells to surviving/respawned workers and "
                          "train them to completion")
    run.add_argument("--max-restarts", type=int, default=0, metavar="N",
                     help="socket backend + --fault-policy recover: respawn "
                          "up to N replacement workers for dead ones "
                          "(default 0: recover by in-grid adoption only)")
    run.add_argument("--snapshot-every", type=int, default=None, metavar="N",
                     help="per-cell checkpoint cadence in iterations "
                          "(default: every iteration for non-abort fault "
                          "policies, off for abort)")
    run.add_argument("--profile", action="store_true")
    run.add_argument("--checkpoint", metavar="PATH",
                     help="write a checkpoint here after training")
    run.add_argument("--metrics-jsonl", metavar="PATH",
                     help="stream per-iteration metrics as JSON lines")
    run.add_argument("--telemetry", choices=("off", "basic", "trace"),
                     default=None,
                     help="span/counter bus level (default: $REPRO_TELEMETRY "
                          "or 'basic')")
    run.add_argument("--trace", metavar="PATH",
                     help="write the merged Chrome/Perfetto trace here "
                          "(implies --telemetry trace; open in ui.perfetto.dev)")

    resume = sub.add_parser("resume", help="continue a checkpointed run")
    resume.add_argument("checkpoint", metavar="PATH")

    config = sub.add_parser(
        "config", help="print the resolved experiment configuration as JSON")
    _add_experiment_arguments(config)
    config.add_argument("--from-json", metavar="PATH",
                        help="validate and resolve a saved config file "
                             "instead of the flag-built one")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4))

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 3, 4))

    serve = sub.add_parser("serve", help="serve a checkpoint: replay a "
                                         "synthetic traffic trace and report")
    serve.add_argument("--checkpoint", required=True, metavar="PATH")
    serve.add_argument("--cell", type=int, default=0,
                       help="grid cell whose mixture to serve (default 0)")
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--concurrency", type=int, default=8,
                       help="client threads replaying the trace")
    serve.add_argument("--request-size", type=int, default=8,
                       help="mean images per request")
    serve.add_argument("--workers", type=int, default=2,
                       help="engine worker threads")
    serve.add_argument("--pool-capacity", type=int, default=1024,
                       help="seedless sample pool size (0 disables)")
    serve.add_argument("--seed", type=int, default=0)

    sample = sub.add_parser("sample", help="one-shot generation from a "
                                           "checkpoint to .npz")
    sample.add_argument("--checkpoint", required=True, metavar="PATH")
    sample.add_argument("--cell", type=int, default=0)
    sample.add_argument("--n", type=int, default=64)
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--out", required=True, metavar="PATH")

    worker = sub.add_parser("worker", help="host ranks of a socket-backend "
                                           "run on this machine")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's rendezvous address")
    worker.add_argument("--slots", type=int, default=1,
                        help="how many ranks this worker hosts (default 1)")
    worker.add_argument("--token", default=None,
                        help="rendezvous token printed by the coordinator")
    worker.add_argument("--index", type=int, default=None,
                        help=argparse.SUPPRESS)  # set by the coordinator spawn
    worker.add_argument("--timeout", type=float, default=60.0,
                        help="seconds to wait for the rendezvous (default 60)")
    worker.add_argument("--quiet", action="store_true")
    worker.add_argument("--dtype", default="float64",
                        help="dtype policy of the run this worker joins "
                             "(must match the coordinator's --dtype)")
    worker.add_argument("--join", action="store_true",
                        help="attach to an already-running job through the "
                             "live rendezvous, filling a vacant rank slot "
                             "(a dead or drained worker's)")

    drain = sub.add_parser("drain", help="gracefully release one rank of a "
                                         "live socket-backend run")
    drain.add_argument("rank", type=int,
                       help="WORLD rank to drain (1..cells; rank 0 is the "
                            "master)")
    drain.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="the coordinator's rendezvous address")
    drain.add_argument("--token", default=None,
                       help="rendezvous token printed by the coordinator")
    drain.add_argument("--timeout", type=float, default=10.0,
                       help="seconds to wait for the coordinator's reply")

    trace = sub.add_parser("trace", help="summarize a Perfetto trace written "
                                         "by 'repro run --trace'")
    trace.add_argument("file", metavar="PATH")

    # Dispatched before parsing (see main): the lint CLI owns its own flags
    # (--format/--baseline/--select/...), which argparse's REMAINDER would
    # mangle.  The stub keeps `repro --help` honest.
    sub.add_parser("lint", help="project-invariant static analysis "
                                "(rules R1-R10; repro lint --list-rules)",
                   add_help=False)

    return parser


def _cmd_info(_args) -> int:
    import repro
    from repro.cluster import cluster_uy

    platform = cluster_uy()
    print(f"repro {repro.__version__}")
    print("reproduction of: Perez, Nesmachnow, Toutouh, Hemberg, O'Reilly —")
    print("  'Parallel/distributed implementation of cellular training for")
    print("   generative adversarial neural networks', IPDPS Workshops/PDCO 2020")
    print(f"platform model: {platform.name}, {len(platform.nodes)} nodes, "
          f"{platform.total_cores} cores")
    return 0


def _build_experiment(args):
    """Translate the shared CLI flags into an :class:`Experiment`."""
    from repro.api import Experiment
    from repro.config import paper_table1_config

    backend_options = {}
    for option in ("hosts", "bind", "token"):
        value = getattr(args, option, None)
        if value is not None:
            if args.backend != "socket":
                raise SystemExit(
                    f"--{option} only applies to --backend socket "
                    f"(got --backend {args.backend})")
            backend_options[option] = value
    base = paper_table1_config(*args.grid).scaled(
        iterations=args.iterations,
        dataset_size=args.dataset_size,
        batch_size=args.batch_size,
        batches_per_iteration=args.batches_per_iteration,
    )
    return (Experiment(base)
            .loss(args.loss)
            .dtype(args.dtype)
            .override(seed=args.seed)
            .dataset(args.dataset)
            .backend(args.backend, **backend_options)
            .exchange(args.exchange))


def _report_result(result, cells: int) -> None:
    print(f"wall time: {result.wall_time_s:.2f}s")
    for cell in range(cells):
        reports = result.cell_reports[cell]
        if not reports:
            print(f"  cell {cell}: no reports (dead slave?)")
            continue
        last = reports[-1]
        print(f"  cell {cell}: g-fitness {last.best_generator_fitness:9.4f}  "
              f"d-fitness {last.best_discriminator_fitness:9.4f}  "
              f"lr {last.learning_rate:.6f}")
    print(f"best cell: {result.best_cell_index()}")
    _report_transport_stats(result)
    _report_telemetry(result)


def _report_transport_stats(result) -> None:
    """Per-rank message/byte counters of a distributed run (rank 0 is the
    master; the payload-byte totals sit next to the timer snapshots in the
    profile output)."""
    stats = getattr(result, "transport_stats", [])
    if not stats:
        return
    from repro.mpi import merge_transport_stats

    total = merge_transport_stats(stats)
    print(f"transport traffic: {total.messages_sent} messages, "
          f"{total.bytes_sent / 1024:.1f} KiB payload")
    for record in stats:
        print(f"  {record.summary()}")


def _report_telemetry(result) -> None:
    """Satellite one-liner for every backend: throughput, traffic, and the
    train-vs-communication split from the merged telemetry view."""
    merged = getattr(result, "telemetry", None)
    if merged is None:
        return
    rate = (result.iterations_run / result.wall_time_s
            if result.wall_time_s > 0 else 0.0)
    train_s = merged.span_seconds("cell.train")
    comm_s = merged.span_seconds("exchange.gather")
    exchange_bytes = (merged.counter("exchange.bytes_sent")
                      + merged.counter("mpi.bytes_sent"))
    print(f"telemetry: {rate:.2f} iteration(s)/s, "
          f"exchange {exchange_bytes / 1024:.1f} KiB, "
          f"train {train_s:.2f}s vs comm {comm_s:.2f}s")


def _cmd_run(args) -> int:
    from repro.api import JsonlMetrics

    experiment = _build_experiment(args).profile(args.profile)
    experiment.fault_policy(args.fault_policy,
                            max_restarts=args.max_restarts,
                            snapshot_every=args.snapshot_every)
    level = args.telemetry
    if level is None:
        level = os.environ.get("REPRO_TELEMETRY", "basic")
        if level not in ("off", "basic", "trace"):
            level = "basic"
    experiment.telemetry(level=level, trace_path=args.trace)
    if args.metrics_jsonl:
        experiment.callbacks(JsonlMetrics(args.metrics_jsonl))
    config = experiment.config
    cells = config.coevolution.cells
    print(f"grid {args.grid[0]}x{args.grid[1]} ({cells} cells), "
          f"backend={args.backend}, iterations={config.coevolution.iterations}")

    result = experiment.run()
    _report_result(result, cells)
    if args.trace:
        if result.telemetry is not None:
            print(f"trace written to {args.trace} "
                  f"(inspect with 'repro trace {args.trace}')")
        else:
            print(f"WARNING: no telemetry recorded; {args.trace} not written",
                  file=sys.stderr)
    if args.profile and result.distributed is not None:
        from repro.profiling import format_table4, profile_rows

        rows = profile_rows(result.profile(parallel=False),
                            result.profile(parallel=True))
        print("\n" + format_table4(rows))
    if args.checkpoint:
        # Written even for incomplete runs: the survivors' genomes are the
        # valuable artifact, and the checkpoint's iteration counter stays
        # at the aborted point so `repro resume` trains the remainder.
        result.save_checkpoint(args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}"
              + ("" if result.ok else " (partial: run aborted early)"))
    if result.dead_ranks:
        # One breakdown line regardless of policy, so operators see what
        # the fault machinery actually did with each lost rank.
        print(f"fault report ({result.fault_policy}): "
              f"died {result.dead_ranks}, "
              f"recovered {result.recovered_ranks}, "
              f"degraded {result.degraded_ranks}", file=sys.stderr)
    if not result.ok:
        print(f"WARNING: run did not meet its {result.fault_policy!r} "
              f"fault-policy contract (dead ranks {result.dead_ranks})",
              file=sys.stderr)
        return 1
    return 0


def _cmd_resume(args) -> int:
    from repro.api import Experiment

    experiment = Experiment.from_checkpoint(args.checkpoint)
    checkpoint = experiment.checkpoint
    print(f"resuming at iteration {checkpoint.iteration} "
          f"({checkpoint.remaining_iterations} remaining)")
    result = experiment.run()
    _report_result(result, checkpoint.config.coevolution.cells)
    return 0


def _cmd_config(args) -> int:
    from repro.config import ConfigError, ExperimentConfig

    try:
        if args.from_json:
            with open(args.from_json, encoding="utf-8") as handle:
                config = ExperimentConfig.from_json(handle.read())
        else:
            config = _build_experiment(args).config
    except (ConfigError, ValueError, OSError) as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return 2
    print(config.to_json())
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import table1, table2, table3, table4

    if args.number == 1:
        print(table1.run()["table"])
    elif args.number == 2:
        print(table2.format_table(table2.run()))
    elif args.number == 3:
        print(table3.format_table(table3.run()))
    else:
        print(table4.format_table(table4.run()))
    return 0


def _cmd_fig(args) -> int:
    from repro.experiments import fig1, fig2, fig3, fig4

    if args.number == 1:
        print(fig1.format_figure(fig1.run()))
    elif args.number == 2:
        print(fig2.format_figure(fig2.run()))
    elif args.number == 3:
        print(fig3.format_figure(fig3.run()))
    else:
        print(fig4.format_figure(fig4.run()))
    return 0


def _cmd_serve(args) -> int:
    from repro.api import serve_checkpoint

    stats = serve_checkpoint(
        args.checkpoint,
        cell=args.cell,
        requests=args.requests,
        concurrency=args.concurrency,
        request_size=args.request_size,
        workers=args.workers,
        pool_capacity=args.pool_capacity,
        seed=args.seed,
    )
    print()
    print(stats.report())
    return 0


def _cmd_sample(args) -> int:
    from repro.api import load_ensemble
    from repro.runtime import pin_blas_threads

    pin_blas_threads(1)  # gemm row-stability => reproducible samples
    checkpoint, ensemble = load_ensemble(args.checkpoint, cell=args.cell)
    print(checkpoint.summary())
    images = ensemble.sample(args.n, seed=args.seed)
    # Images are stored flat, (n, side*side); image_side is the render hint.
    np.savez_compressed(args.out, images=images,
                        image_side=checkpoint.config.network.image_side)
    print(f"{args.n} samples from cell {args.cell} (seed {args.seed}) "
          f"written to {args.out}")
    return 0


def _cmd_worker(args) -> int:
    from repro.mpi.socket_transport import worker_main
    from repro.runtime import pin_blas_threads

    pin_blas_threads(1)  # one rank = one core, exactly like spawned ranks
    return worker_main(
        args.connect,
        slots=args.slots,
        token=args.token,
        index=args.index,
        timeout=args.timeout,
        quiet=args.quiet,
        dtype=args.dtype,
        join=args.join,
    )


def _cmd_drain(args) -> int:
    from repro.mpi.socket_transport import drain_request

    return drain_request(
        args.connect,
        rank=args.rank,
        token=args.token,
        timeout=args.timeout,
    )


def _cmd_trace(args) -> int:
    import json

    from repro.telemetry import format_summary, summarize

    try:
        with open(args.file, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.file!r}: {error}", file=sys.stderr)
        return 2
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        print(f"{args.file!r} is not a Chrome/Perfetto trace "
              "(no 'traceEvents' key)", file=sys.stderr)
        return 2
    print(format_summary(summarize(trace)))
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "resume": _cmd_resume,
    "config": _cmd_config,
    "table": _cmd_table,
    "fig": _cmd_fig,
    "serve": _cmd_serve,
    "sample": _cmd_sample,
    "worker": _cmd_worker,
    "drain": _cmd_drain,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        from repro.analysis.engine import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Reports are made to be piped (`repro trace ... | head`); a closed
        # pipe is a normal way for the reader to stop, not an error.  Point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
