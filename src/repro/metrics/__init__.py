"""Generative-quality metrics (the inception-score substitute).

The paper selects the best neighborhood "according to some fitness value,
e.g., inception score".  Inception-v3 makes no sense for 28x28 digits, so —
as is standard for MNIST-scale work — a small classifier trained on the
*real* dataset plays its role:

* :func:`classifier_score` — ``exp(E[KL(p(y|x) || p(y))])`` over generated
  samples, the exact inception-score formula with the domain classifier.
* :func:`frechet_distance` — Fréchet distance between Gaussian fits of
  real/generated features from the classifier's penultimate layer (FID).
* :func:`mode_coverage` / :func:`total_variation_distance` — mode-collapse
  diagnostics over the ten digit classes.
"""

from repro.metrics.classifier import DigitClassifier, train_digit_classifier
from repro.metrics.dynamics import (
    ConvergenceSummary,
    fitness_curves,
    genome_diversity_matrix,
    learning_rate_trajectories,
    mean_pairwise_distance,
    summarize_convergence,
)
from repro.metrics.scores import (
    classifier_score,
    frechet_distance,
    mode_coverage,
    total_variation_distance,
)

__all__ = [
    "DigitClassifier",
    "train_digit_classifier",
    "classifier_score",
    "frechet_distance",
    "mode_coverage",
    "total_variation_distance",
    "fitness_curves",
    "learning_rate_trajectories",
    "genome_diversity_matrix",
    "mean_pairwise_distance",
    "ConvergenceSummary",
    "summarize_convergence",
]
