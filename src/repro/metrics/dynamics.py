"""Training-dynamics diagnostics: loss curves, diversity, convergence.

Population diversity is the mechanism Lipizzaner/Mustangs rely on to escape
mode collapse; these helpers quantify it from the artifacts both trainers
already produce (per-cell :class:`~repro.coevolution.cell.CellReport` lists
and final genomes) without touching the training loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coevolution.cell import CellReport
from repro.coevolution.genome import Genome

__all__ = [
    "fitness_curves",
    "learning_rate_trajectories",
    "genome_diversity_matrix",
    "mean_pairwise_distance",
    "ConvergenceSummary",
    "summarize_convergence",
]


def fitness_curves(cell_reports: list[list[CellReport]]) -> dict[str, np.ndarray]:
    """Per-iteration best generator/discriminator fitness, cells x iterations.

    Cells that stopped early (aborted runs) are padded with NaN so the
    matrix stays rectangular.
    """
    if not cell_reports:
        raise ValueError("no cell reports")
    iterations = max((len(r) for r in cell_reports), default=0)
    g = np.full((len(cell_reports), iterations), np.nan)
    d = np.full((len(cell_reports), iterations), np.nan)
    for row, reports in enumerate(cell_reports):
        for col, report in enumerate(reports):
            g[row, col] = report.best_generator_fitness
            d[row, col] = report.best_discriminator_fitness
    return {"generator": g, "discriminator": d}


def learning_rate_trajectories(cell_reports: list[list[CellReport]]) -> np.ndarray:
    """Learning rate per cell per iteration (NaN-padded)."""
    iterations = max((len(r) for r in cell_reports), default=0)
    out = np.full((len(cell_reports), iterations), np.nan)
    for row, reports in enumerate(cell_reports):
        for col, report in enumerate(reports):
            out[row, col] = report.learning_rate
    return out


def genome_diversity_matrix(genomes: list[Genome]) -> np.ndarray:
    """Pairwise L2 distances between genomes (symmetric, zero diagonal)."""
    n = len(genomes)
    if n == 0:
        raise ValueError("no genomes")
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = genomes[i].distance_to(genomes[j])
    return matrix


def mean_pairwise_distance(genomes: list[Genome]) -> float:
    """Mean off-diagonal genome distance — the grid's diversity scalar."""
    n = len(genomes)
    if n < 2:
        return 0.0
    matrix = genome_diversity_matrix(genomes)
    return float(matrix.sum() / (n * (n - 1)))


@dataclass(frozen=True)
class ConvergenceSummary:
    """End-of-run health indicators for one training run."""

    final_generator_fitness_mean: float
    final_generator_fitness_best: float
    generator_fitness_improved: bool
    genome_diversity: float
    learning_rate_spread: float

    def healthy(self) -> bool:
        """Heuristic: fitness finite, some diversity retained."""
        return (
            np.isfinite(self.final_generator_fitness_mean)
            and self.genome_diversity > 0.0
        )


def summarize_convergence(cell_reports: list[list[CellReport]],
                          generator_genomes: list[Genome]) -> ConvergenceSummary:
    """Condense a run's trajectory into a :class:`ConvergenceSummary`."""
    curves = fitness_curves(cell_reports)["generator"]
    finals = curves[:, -1]
    first = np.nanmean(curves[:, 0])
    last = np.nanmean(finals)
    rates = learning_rate_trajectories(cell_reports)[:, -1]
    return ConvergenceSummary(
        final_generator_fitness_mean=float(last),
        final_generator_fitness_best=float(np.nanmin(finals)),
        generator_fitness_improved=bool(last <= first),
        genome_diversity=mean_pairwise_distance(generator_genomes),
        learning_rate_spread=float(np.nanmax(rates) - np.nanmin(rates)),
    )
