"""Score functions computed from the metric classifier's outputs."""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.data.digits import NUM_CLASSES
from repro.metrics.classifier import DigitClassifier

__all__ = [
    "classifier_score",
    "frechet_distance",
    "mode_coverage",
    "total_variation_distance",
]


def classifier_score(classifier: DigitClassifier, generated: np.ndarray,
                     eps: float = 1e-12) -> float:
    """Inception-score formula with the domain classifier.

    ``exp( E_x[ KL( p(y|x) || p(y) ) ] )`` — high when each sample is
    confidently classified (sharp conditionals) *and* the marginal over
    classes is broad (mode coverage).  Ranges from 1 (collapse/noise) to the
    number of classes (10).
    """
    if generated.shape[0] < 2:
        raise ValueError("need at least 2 samples for a meaningful score")
    proba = classifier.predict_proba(generated)
    marginal = proba.mean(axis=0, keepdims=True)
    kl = np.sum(proba * (np.log(proba + eps) - np.log(marginal + eps)), axis=1)
    return float(np.exp(kl.mean()))


def frechet_distance(classifier: DigitClassifier, real: np.ndarray,
                     generated: np.ndarray) -> float:
    """FID on the classifier's penultimate features.

    ``|mu_r - mu_g|^2 + tr(C_r + C_g - 2 (C_r C_g)^{1/2})`` with Gaussian
    fits to the two feature clouds.  Lower is better; 0 iff the fits match.
    """
    if real.shape[0] < 2 or generated.shape[0] < 2:
        raise ValueError("need at least 2 samples per side to fit Gaussians")
    feats_real = classifier.features(real)
    feats_gen = classifier.features(generated)
    mu_r, mu_g = feats_real.mean(axis=0), feats_gen.mean(axis=0)
    cov_r = np.cov(feats_real, rowvar=False)
    cov_g = np.cov(feats_gen, rowvar=False)
    diff = mu_r - mu_g
    covmean, _ = scipy.linalg.sqrtm(cov_r @ cov_g, disp=False)
    covmean = np.real(covmean)
    fid = float(diff @ diff + np.trace(cov_r + cov_g - 2.0 * covmean))
    return max(fid, 0.0)


def mode_coverage(classifier: DigitClassifier, generated: np.ndarray,
                  min_fraction: float = 0.01) -> int:
    """Number of digit classes receiving at least ``min_fraction`` of samples.

    10 means all modes covered; 1 signals total mode collapse.
    """
    predictions = classifier.predict(generated)
    counts = np.bincount(predictions, minlength=NUM_CLASSES)
    threshold = max(1, int(np.ceil(min_fraction * generated.shape[0])))
    return int(np.sum(counts >= threshold))


def total_variation_distance(classifier: DigitClassifier, generated: np.ndarray,
                             reference: np.ndarray | None = None) -> float:
    """TVD between the generated label distribution and a reference.

    The reference defaults to uniform over the ten digits (MNIST is almost
    exactly balanced; the synthetic dataset is balanced by construction).
    """
    predictions = classifier.predict(generated)
    counts = np.bincount(predictions, minlength=NUM_CLASSES).astype(np.float64)
    p = counts / counts.sum()
    if reference is None:
        q = np.full(NUM_CLASSES, 1.0 / NUM_CLASSES)
    else:
        ref_counts = np.bincount(np.asarray(reference), minlength=NUM_CLASSES).astype(np.float64)
        q = ref_counts / ref_counts.sum()
    return float(0.5 * np.abs(p - q).sum())
