"""The feature/classification network behind the quality metrics.

A two-layer MLP (784 -> 64 -> 10) trained with cross-entropy on the real
dataset.  Its softmax output drives :func:`~repro.metrics.scores.classifier_score`
and its 64-dim hidden layer provides the features for the Fréchet distance —
the same division of labor Inception-v3 performs for full-size images.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn import Adam, Linear, Module, Sequential, Tanh, Tensor
from repro.nn import functional as F
from repro.nn.autograd import no_grad

__all__ = ["DigitClassifier", "train_digit_classifier"]


class DigitClassifier(Module):
    """MLP classifier exposing logits, probabilities and hidden features."""

    def __init__(self, rng: np.random.Generator, input_size: int = 784,
                 hidden_size: int = 64, classes: int = 10):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.classes = classes
        self.feature_net = Sequential(Linear(input_size, hidden_size, rng), Tanh())
        self.head = Linear(hidden_size, classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.feature_net(x))

    # -- inference helpers (no tape) ------------------------------------------

    def features(self, images: np.ndarray, batch: int = 1024) -> np.ndarray:
        """Penultimate-layer features for a ``[-1, 1]``-range image batch."""
        chunks = []
        with no_grad():
            for lo in range(0, images.shape[0], batch):
                chunk = Tensor(images[lo:lo + batch])
                chunks.append(self.feature_net(chunk).numpy())
        return np.concatenate(chunks, axis=0)

    def predict_proba(self, images: np.ndarray, batch: int = 1024) -> np.ndarray:
        """Class probabilities ``p(y|x)`` of shape ``(n, classes)``."""
        chunks = []
        with no_grad():
            for lo in range(0, images.shape[0], batch):
                logits = self.forward(Tensor(images[lo:lo + batch]))
                chunks.append(F.softmax(logits, axis=-1).numpy())
        return np.concatenate(chunks, axis=0)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.predict_proba(images).argmax(axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on a labeled set."""
        return float(np.mean(self.predict(images) == np.asarray(labels)))


def train_digit_classifier(images: np.ndarray, labels: np.ndarray,
                           rng: np.random.Generator, *, epochs: int = 5,
                           batch_size: int = 100, learning_rate: float = 1e-3,
                           hidden_size: int = 64) -> DigitClassifier:
    """Train the metric classifier on ``[-1, 1]``-range images.

    Five epochs of Adam reach >95% accuracy on the synthetic dataset — more
    than enough separation for the score to rank generators reliably.
    """
    if images.ndim != 2:
        raise ValueError("images must be (n, pixels)")
    classifier = DigitClassifier(rng, input_size=images.shape[1], hidden_size=hidden_size)
    optimizer = Adam(classifier.parameters(), learning_rate)
    dataset = ArrayDataset(images, np.asarray(labels, dtype=np.int64))
    loader = DataLoader(dataset, min(batch_size, len(dataset)), rng, drop_last=False)
    for _ in range(epochs):
        for batch, batch_labels in loader.batches_with_labels():
            logits = classifier(Tensor(batch))
            loss = F.cross_entropy_with_logits(logits, batch_labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    return classifier
