"""Request-replay load testing for the serving stack.

Drives a :class:`GeneratorServer` with a synthetic traffic trace that mixes
the three request classes real traffic contains — anonymous seedless
requests (pool-eligible), a small set of *hot* deterministic seeds replayed
over and over (LRU-eligible), and cold deterministic seeds (engine-bound) —
from many concurrent client threads.  Used by ``python -m repro serve`` and
by ``benchmarks/test_serving_throughput.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.serving.api import ServerOverloadedError, ServerStats

__all__ = ["TraceEntry", "synthetic_trace", "replay", "run_load_test"]


@dataclass(frozen=True)
class TraceEntry:
    """One request of the replayed trace."""

    n: int
    seed: int | None = None


def synthetic_trace(requests: int, rng: np.random.Generator, *,
                    mean_size: int = 8, seedless_fraction: float = 0.5,
                    hot_fraction: float = 0.3, hot_seeds: int = 16
                    ) -> list[TraceEntry]:
    """A shuffled mix of seedless, hot-seeded and cold-seeded requests.

    Request sizes are geometric around ``mean_size`` (traffic is mostly
    small requests with a long tail), never zero.  Hot requests draw their
    ``(seed, n)`` from a pool of ``hot_seeds`` combinations so replays
    collide in the LRU.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if mean_size < 1:
        raise ValueError("mean_size must be >= 1")
    if not 0 <= seedless_fraction + hot_fraction <= 1:
        raise ValueError("fractions must sum to at most 1")
    hot_pool = [(int(rng.integers(1000)),
                 int(rng.geometric(1.0 / mean_size)))
                for _ in range(hot_seeds)]
    entries: list[TraceEntry] = []
    for _ in range(requests):
        kind = rng.random()
        if kind < seedless_fraction:
            entries.append(TraceEntry(n=int(rng.geometric(1.0 / mean_size))))
        elif kind < seedless_fraction + hot_fraction:
            seed, n = hot_pool[int(rng.integers(hot_seeds))]
            entries.append(TraceEntry(n=n, seed=seed))
        else:
            entries.append(TraceEntry(n=int(rng.geometric(1.0 / mean_size)),
                                      seed=int(rng.integers(10_000, 1 << 30))))
    return entries


def replay(server, trace: list[TraceEntry], *, concurrency: int = 8,
           timeout: float = 120.0) -> dict:
    """Replay ``trace`` from ``concurrency`` client threads.

    Returns completion counters; overloaded (rejected) requests are counted
    and dropped, like a client that gives up on a 503.  Any other failure is
    counted under ``failed`` — the client keeps replaying its shard so one
    server-side error cannot silently truncate the trace.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    shards = [trace[i::concurrency] for i in range(concurrency)]
    counters = {"completed": 0, "rejected": 0, "failed": 0, "samples": 0}
    lock = threading.Lock()

    def client(shard: list[TraceEntry]) -> None:
        for entry in shard:
            try:
                response = server.request(entry.n, seed=entry.seed,
                                          timeout=timeout)
            except ServerOverloadedError:
                with lock:
                    counters["rejected"] += 1
                continue
            except Exception as error:
                with lock:
                    counters["failed"] += 1
                    counters["last_error"] = repr(error)
                continue
            with lock:
                counters["completed"] += 1
                counters["samples"] += response.n
    threads = [threading.Thread(target=client, args=(shard,), daemon=True)
               for shard in shards if shard]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return counters


def run_load_test(checkpoint_path, *, cell: int = 0, requests: int = 200,
                  concurrency: int = 8, request_size: int = 8,
                  workers: int = 2, pool_capacity: int = 1024,
                  seed: int = 0, verbose: bool = True) -> ServerStats:
    """Checkpoint file in, :class:`ServerStats` out — the ``serve`` command."""
    from repro.coevolution import load_checkpoint
    from repro.serving.registry import ServableEnsemble
    from repro.serving.server import GeneratorServer

    checkpoint = load_checkpoint(checkpoint_path)
    if verbose:
        print(checkpoint.summary())
    ensemble = ServableEnsemble.from_checkpoint(checkpoint, cell=cell)
    rng = np.random.default_rng(seed)
    trace = synthetic_trace(requests, rng, mean_size=request_size)
    if verbose:
        total = sum(entry.n for entry in trace)
        print(f"replaying {len(trace)} requests ({total} samples) from "
              f"{concurrency} clients against cell {cell}")
    with GeneratorServer(ensemble, workers=workers,
                         pool_capacity=pool_capacity, seed=seed) as server:
        counters = replay(server, trace, concurrency=concurrency)
        stats = server.stats()
    if verbose:
        print(f"completed {counters['completed']}, "
              f"rejected {counters['rejected']}, "
              f"failed {counters['failed']}, "
              f"samples {counters['samples']}")
        if counters["failed"]:
            print(f"WARNING: {counters['failed']} requests failed "
                  f"(last error: {counters.get('last_error')})")
    return stats
