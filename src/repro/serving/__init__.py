"""Batched, cached inference for trained generator ensembles.

Training ends where the paper ends — with the master's reduction returning
the best generator mixture.  This package is the downstream half the
ROADMAP's "serve heavy traffic" north star asks for: it turns training
checkpoints into a production-style sampling service on the same NumPy
stack.

* :mod:`repro.serving.registry` — :class:`ServableEnsemble` (immutable
  deployment view of one cell's generator mixture) and
  :class:`ModelRegistry` (named versions, atomic hot-swap, eviction);
* :mod:`repro.serving.engine` — :class:`BatchingEngine`, which coalesces
  concurrent requests into large fused forward passes per mixture
  component, amortizing cost exactly as the trainer batches latents;
* :mod:`repro.serving.cache` — :class:`LRUSampleCache` for deterministic
  replays and :class:`SamplePool`, a background-refilled ring buffer for
  anonymous traffic;
* :mod:`repro.serving.server` — :class:`GeneratorServer`, the front door
  with backpressure, graceful shutdown and :class:`ServerStats`;
* :mod:`repro.serving.compute` — the deterministic primitives both paths
  share, which make coalesced results bit-identical to unbatched ones.

Quickstart::

    from repro import Experiment
    from repro.serving import GeneratorServer

    result = Experiment().grid(2, 2).backend("sequential").run()
    with GeneratorServer(result.to_servable()) as server:
        images = server.request(64, seed=7).images
"""

from repro.serving.api import (
    SampleRequest,
    SampleResponse,
    ServerClosedError,
    ServerOverloadedError,
    ServerStats,
    ServingError,
    UnknownVersionError,
)
from repro.serving.cache import CacheStats, LRUSampleCache, PoolStats, SamplePool
from repro.serving.engine import BatchingEngine, EngineStats
from repro.serving.loadtest import TraceEntry, replay, run_load_test, synthetic_trace
from repro.serving.registry import ModelRegistry, ServableEnsemble
from repro.serving.server import GeneratorServer

__all__ = [
    "SampleRequest",
    "SampleResponse",
    "ServerStats",
    "ServingError",
    "UnknownVersionError",
    "ServerClosedError",
    "ServerOverloadedError",
    "LRUSampleCache",
    "SamplePool",
    "CacheStats",
    "PoolStats",
    "BatchingEngine",
    "EngineStats",
    "ModelRegistry",
    "ServableEnsemble",
    "GeneratorServer",
    "TraceEntry",
    "synthetic_trace",
    "replay",
    "run_load_test",
]
