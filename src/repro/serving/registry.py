"""Versioned model registry: training checkpoints in, servable ensembles out.

A :class:`ServableEnsemble` is the *deployment* view of one grid cell: the
cell's Moore-5 neighborhood generators rebuilt from center genomes, weighted
by the cell's evolved :class:`~repro.coevolution.mixture.MixtureWeights`.
It is immutable — serving never trains — and safe to share across the
engine's worker threads.

The :class:`ModelRegistry` holds many named versions and performs the
atomic hot-swap a live service needs: ``register`` a candidate, smoke-test
it through the server, then ``promote`` it; in-flight requests keep the
ensemble object they resolved, new requests see the new version.
"""

from __future__ import annotations

import itertools
import os
import threading

import numpy as np

from repro.config import ExperimentConfig
from repro.coevolution.checkpoint import TrainingCheckpoint, load_checkpoint
from repro.coevolution.genome import Genome
from repro.coevolution.grid import ToroidalGrid
from repro.gan.networks import Generator
from repro.serving.api import UnknownVersionError
from repro.serving.compute import assemble, build_plan, forward_rows

__all__ = ["ServableEnsemble", "ModelRegistry"]

#: Process-wide unique ids; cache keys include them so replacing the
#: ensemble behind a version name can never serve another model's samples.
_ENSEMBLE_UIDS = itertools.count()


class ServableEnsemble:
    """An immutable generator mixture ready to serve samples.

    ``generators[i]`` is the ``i``-th mixture component (center first, then
    W/N/E/S neighbors, matching the cell's sub-population order) and
    ``weights`` is the probability each component is sampled from.
    """

    def __init__(self, generators: list[Generator], weights: np.ndarray,
                 config: ExperimentConfig, *, source_cell: int = 0,
                 iteration: int = 0):
        if len(generators) == 0:
            raise ValueError("ensemble needs at least one generator")
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size != len(generators):
            raise ValueError("one weight per generator required")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        self.generators = tuple(generators)
        self.weights = weights / weights.sum()
        self.weights.flags.writeable = False
        self.config = config
        self.source_cell = source_cell
        self.iteration = iteration
        self.uid = next(_ENSEMBLE_UIDS)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_checkpoint(cls, checkpoint: TrainingCheckpoint,
                        cell: int = 0) -> "ServableEnsemble":
        """Rebuild the deployable mixture of ``cell`` from a checkpoint.

        The checkpoint stores every cell's center genome, so a cell's
        neighborhood sub-population — the generators its mixture weights
        refer to — is recovered by materializing the centers of the cell's
        Moore-5 neighborhood.
        """
        return cls._from_centers(
            checkpoint.config, checkpoint.center_genomes,
            checkpoint.mixture_weights, cell, checkpoint.iteration,
        )

    @classmethod
    def from_training_result(cls, result, cell: int | None = None
                             ) -> "ServableEnsemble":
        """Build from a finished run; ``cell`` defaults to the fittest cell."""
        if cell is None:
            cell = result.best_cell_index()
        iteration = result.config.coevolution.iterations
        return cls._from_centers(
            result.config, result.center_genomes, result.mixture_weights,
            cell, iteration,
        )

    @classmethod
    def _from_centers(cls, config: ExperimentConfig,
                      center_genomes: list[tuple[Genome, Genome]],
                      mixture_weights: list[np.ndarray],
                      cell: int, iteration: int) -> "ServableEnsemble":
        grid = ToroidalGrid(config.coevolution.grid_rows,
                            config.coevolution.grid_cols)
        if not 0 <= cell < grid.cell_count:
            raise ValueError(f"cell {cell} outside 0..{grid.cell_count - 1}")
        neighborhood = grid.neighborhood_indices(cell)
        # Degenerate grids repeat indices; build each generator once.
        built: dict[int, Generator] = {}
        init_rng = np.random.default_rng(0)
        for index in neighborhood:
            if index not in built:
                generator = Generator(config.network, init_rng)
                center_genomes[index][0].write_into(generator)
                built[index] = generator
        generators = [built[index] for index in neighborhood]
        weights = np.asarray(mixture_weights[cell], dtype=np.float64)
        if weights.size != len(generators):
            raise ValueError(
                f"cell {cell} has {weights.size} mixture weights for a "
                f"{len(generators)}-generator neighborhood"
            )
        return cls(generators, weights, config,
                   source_cell=cell, iteration=iteration)

    # -- properties -----------------------------------------------------------

    @property
    def latent_size(self) -> int:
        return self.config.network.latent_size

    @property
    def output_neurons(self) -> int:
        return self.config.network.output_neurons

    @property
    def image_shape(self) -> tuple[int, int]:
        side = self.config.network.image_side
        return (side, side)

    def __len__(self) -> int:
        return len(self.generators)

    def __repr__(self) -> str:
        return (
            f"<ServableEnsemble cell={self.source_cell} "
            f"components={len(self)} iteration={self.iteration}>"
        )

    # -- sampling -------------------------------------------------------------

    def with_weights(self, weights: np.ndarray) -> "ServableEnsemble":
        """The same generators under a different mixture (request override)."""
        return ServableEnsemble(list(self.generators), weights, self.config,
                                source_cell=self.source_cell,
                                iteration=self.iteration)

    def normalize_weights(self, weights: np.ndarray) -> np.ndarray:
        """Validate a per-request mixture override against this ensemble.

        Both serving paths (direct :meth:`sample` and the batching engine)
        funnel overrides through here, so a bad vector fails loudly and
        identically instead of silently truncating on one path.
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size != len(self.generators):
            raise ValueError(
                f"weights override needs {len(self.generators)} entries "
                f"(one per mixture component), got shape {w.shape}"
            )
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        return w / w.sum()

    def sample(self, n: int, seed: int | np.random.Generator | None = None,
               weights: np.ndarray | None = None) -> np.ndarray:
        """Draw ``n`` images directly (the unbatched reference path).

        Bit-identical to what the batching engine returns for the same
        ``(seed, n, weights)`` — both paths share :mod:`repro.serving.compute`.
        """
        if isinstance(seed, np.random.Generator):
            rng = seed
        else:
            rng = np.random.default_rng(seed)
        mixture = (self.weights if weights is None
                   else self.normalize_weights(weights))
        plan = build_plan(n, mixture, self.latent_size, rng)
        blocks = [forward_rows(generator, latents)
                  for generator, latents in zip(self.generators, plan.latents)]
        return assemble(plan, blocks, self.output_neurons)


class ModelRegistry:
    """Named, hot-swappable versions of servable ensembles.

    All mutation happens under one lock; readers resolve the active version
    to an immutable ensemble object in a single step, so ``promote`` is an
    atomic pointer swap from the serving threads' point of view.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._versions: dict[str, ServableEnsemble] = {}
        self._active: str | None = None
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Call ``listener(version)`` whenever a version's ensemble is
        replaced or evicted — servers use this to drop stale cache entries."""
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a listener (no-op if absent) — called on server close."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _notify(self, version: str) -> None:
        for listener in list(self._listeners):
            listener(version)

    # -- loading --------------------------------------------------------------

    def register(self, version: str, ensemble: ServableEnsemble,
                 *, promote: bool = False) -> ServableEnsemble:
        """Add (or replace) a version; optionally make it active."""
        if not version:
            raise ValueError("version must be a non-empty string")
        with self._lock:
            replaced = version in self._versions
            self._versions[version] = ensemble
            if promote or self._active is None:
                self._active = version
        if replaced:
            self._notify(version)
        return ensemble

    def load(self, version: str, path: str | os.PathLike, *, cell: int = 0,
             promote: bool = False) -> ServableEnsemble:
        """Load a checkpoint file from disk and register its ensemble."""
        checkpoint = load_checkpoint(path)
        ensemble = ServableEnsemble.from_checkpoint(checkpoint, cell=cell)
        return self.register(version, ensemble, promote=promote)

    # -- resolution -----------------------------------------------------------

    def resolve(self, version: str | None = None
                ) -> tuple[str, ServableEnsemble]:
        """Map a requested version (``None`` = active) to its ensemble."""
        with self._lock:
            name = version if version is not None else self._active
            if name is None:
                raise UnknownVersionError("registry is empty — load a model first")
            try:
                return name, self._versions[name]
            except KeyError:
                raise UnknownVersionError(
                    f"unknown model version {name!r}; "
                    f"loaded: {sorted(self._versions) or '-'}"
                ) from None

    def get(self, version: str | None = None) -> ServableEnsemble:
        return self.resolve(version)[1]

    # -- lifecycle ------------------------------------------------------------

    def promote(self, version: str) -> None:
        """Atomically make ``version`` the one seedless traffic is served from."""
        with self._lock:
            if version not in self._versions:
                raise UnknownVersionError(f"cannot promote unknown version {version!r}")
            self._active = version

    def evict(self, version: str) -> None:
        """Drop a version; the active one is protected (demote first)."""
        with self._lock:
            if version not in self._versions:
                raise UnknownVersionError(f"cannot evict unknown version {version!r}")
            if version == self._active:
                raise ValueError(f"refusing to evict active version {version!r}")
            del self._versions[version]
        self._notify(version)

    @property
    def active_version(self) -> str | None:
        with self._lock:
            return self._active

    def versions(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def __contains__(self, version: str) -> bool:
        with self._lock:
            return version in self._versions
