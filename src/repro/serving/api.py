"""Public request/response surface of the serving subsystem.

Plain dataclasses and exceptions only — no threads, no NumPy compute — so
clients (CLI, benchmarks, tests) can depend on this module without pulling
in the engine machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SampleRequest",
    "SampleResponse",
    "ServerStats",
    "ServingError",
    "UnknownVersionError",
    "ServerClosedError",
    "ServerOverloadedError",
]


class ServingError(RuntimeError):
    """Base class of every serving-layer failure."""


class UnknownVersionError(ServingError, KeyError):
    """The registry holds no ensemble under the requested version."""

    # KeyError.__str__ repr-quotes the message; keep it readable.
    __str__ = RuntimeError.__str__


class ServerClosedError(ServingError):
    """The server was shut down; no further requests are accepted."""


class ServerOverloadedError(ServingError):
    """Backpressure: the bounded request queue is full — retry later."""


@dataclass(frozen=True, eq=False)
class SampleRequest:
    """What a client asks for: ``n`` images, optionally pinned down.

    ``seed`` makes the request deterministic (and LRU-cacheable): the same
    ``(version, seed, n)`` always yields bit-identical images.  ``weights``
    overrides the ensemble's evolved mixture for this request only — e.g. to
    spotlight a single generator — and disables caching.

    Equality and hashing are array-aware (dataclass-generated ``__eq__``
    would crash on the ndarray field), so requests can be deduplicated or
    used as dict keys by clients.
    """

    n: int
    seed: int | None = None
    version: str | None = None
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("n must be >= 0")
        if self.seed is not None and self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.weights is not None:
            # Private, frozen copy: the caller mutating its own array must
            # not change what the engine serves (or this request's hash).
            frozen = np.array(self.weights, dtype=np.float64, copy=True)
            frozen.flags.writeable = False
            object.__setattr__(self, "weights", frozen)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SampleRequest):
            return NotImplemented
        if (self.n, self.seed, self.version) != (other.n, other.seed,
                                                 other.version):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        return self.weights is None or np.array_equal(self.weights,
                                                      other.weights)

    def __hash__(self) -> int:
        weights_key = None if self.weights is None else self.weights.tobytes()
        return hash((self.n, self.seed, self.version, weights_key))

    @property
    def deterministic(self) -> bool:
        return self.seed is not None

    @property
    def cache_key(self) -> tuple | None:
        """LRU key, or ``None`` when the request is not cacheable."""
        if self.seed is None or self.weights is not None:
            return None
        return (self.version, self.seed, self.n)


@dataclass
class SampleResponse:
    """Images plus where they came from."""

    images: np.ndarray
    version: str
    cached: str | None = None
    """``None`` (computed), ``"lru"`` or ``"pool"``."""
    latency_s: float = 0.0

    @property
    def n(self) -> int:
        return self.images.shape[0]


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q))


@dataclass
class ServerStats:
    """Point-in-time operational snapshot of a :class:`GeneratorServer`."""

    uptime_s: float = 0.0
    requests: int = 0
    rejected: int = 0
    samples: int = 0
    queue_depth: int = 0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    lru_hits: int = 0
    lru_misses: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    engine_batches: int = 0
    engine_requests: int = 0
    versions: list[str] = field(default_factory=list)
    active_version: str | None = None

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.uptime_s if self.uptime_s > 0 else 0.0

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.uptime_s if self.uptime_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        hits = self.lru_hits + self.pool_hits
        total = hits + self.lru_misses + self.pool_misses
        return hits / total if total else 0.0

    @property
    def mean_coalesced_requests(self) -> float:
        return (self.engine_requests / self.engine_batches
                if self.engine_batches else 0.0)

    def report(self) -> str:
        """Human-readable multi-line summary (printed by ``repro serve``)."""
        lines = [
            "ServerStats",
            f"  active version   : {self.active_version} "
            f"(loaded: {', '.join(self.versions) or '-'})",
            f"  uptime           : {self.uptime_s:.2f}s",
            f"  requests         : {self.requests} served, {self.rejected} rejected",
            f"  samples          : {self.samples}",
            f"  throughput       : {self.throughput_rps:.1f} req/s, "
            f"{self.samples_per_s:.1f} samples/s",
            f"  latency          : p50 {self.p50_latency_s * 1e3:.2f}ms, "
            f"p95 {self.p95_latency_s * 1e3:.2f}ms",
            f"  queue depth      : {self.queue_depth}",
            f"  cache hit rate   : {self.cache_hit_rate:.1%} "
            f"(lru {self.lru_hits}/{self.lru_hits + self.lru_misses}, "
            f"pool {self.pool_hits}/{self.pool_hits + self.pool_misses})",
            f"  engine           : {self.engine_batches} batches, "
            f"{self.mean_coalesced_requests:.2f} requests/batch",
        ]
        return "\n".join(lines)
