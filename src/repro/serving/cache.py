"""Serving caches: a deterministic LRU and a pre-generated sample pool.

Two orthogonal caches sit in front of the batching engine:

* :class:`LRUSampleCache` — exact-hit cache for *deterministic* requests
  keyed on ``(version, seed, n)``.  Replayed seeds (dashboards, tests,
  retries) are answered in O(1) without touching a generator.
* :class:`SamplePool` — a ring buffer of *seedless* samples produced ahead
  of demand by a background refill thread, the serving analogue of the
  trainer pre-rendering its dataset.  Anonymous traffic pops from the pool
  and only falls through to the engine on a miss.

Both keep hit/miss statistics that surface in :class:`ServerStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.serving.registry import ServableEnsemble

__all__ = ["LRUSampleCache", "SamplePool", "CacheStats", "PoolStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUSampleCache:
    """Bounded mapping ``(version, seed, n) -> images`` with LRU eviction.

    Stored arrays are frozen (non-writeable) so one cached batch can be
    handed to many clients without defensive copies.
    """

    def __init__(self, capacity: int = 256, max_bytes: int = 256 * 2 ** 20):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: tuple) -> np.ndarray | None:
        with self._lock:
            images = self._entries.get(key)
            if images is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return images

    def put(self, key: tuple, images: np.ndarray) -> None:
        if images.nbytes > self.max_bytes:
            return  # one giant batch must not flush (or overflow) the cache
        # Copy before freezing: freezing the caller's own array in place
        # would hand the inserting client read-only images.
        frozen = np.array(images, copy=True)
        frozen.flags.writeable = False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = frozen
            self._bytes += frozen.nbytes
            while len(self._entries) > self.capacity \
                    or self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._evictions += 1

    def invalidate(self, version: str | None = None) -> int:
        """Drop all entries (or only one version's); returns the count."""
        with self._lock:
            if version is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._bytes = 0
                return dropped
            stale = [key for key in self._entries if key[0] == version]
            for key in stale:
                self._bytes -= self._entries[key].nbytes
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._entries), capacity=self.capacity)


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    refills: int = 0
    generated: int = 0
    served: int = 0
    level: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SamplePool:
    """Ring buffer of pre-generated samples with background refill.

    ``take(n)`` either returns ``n`` samples in O(n) copy time (hit) or
    ``None`` (miss; the caller falls back to the engine).  A refill thread
    tops the buffer back up whenever the level drops below
    ``low_watermark`` — so steady anonymous traffic is served entirely from
    samples generated off the request path.
    """

    def __init__(self, ensemble: ServableEnsemble, *, capacity: int = 2048,
                 refill_batch: int = 256, low_watermark: float = 0.5,
                 seed: int = 0, autostart: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if refill_batch < 1:
            raise ValueError("refill_batch must be >= 1")
        if not 0.0 < low_watermark <= 1.0:
            raise ValueError("low_watermark must be in (0, 1]")
        self.ensemble = ensemble
        self.capacity = capacity
        self.refill_batch = refill_batch
        self.low_watermark = low_watermark
        self._rng = np.random.default_rng(seed)
        self._buffer = np.empty((capacity, ensemble.output_neurons))
        self._head = 0  # read position
        self._count = 0
        self._lock = threading.Lock()
        self._need_refill = threading.Event()
        self._closed = threading.Event()
        self._stats = PoolStats(capacity=capacity)
        self._thread: threading.Thread | None = None
        if autostart:
            self.start()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._need_refill.set()
        self._thread = threading.Thread(target=self._refill_loop,
                                        name="sample-pool-refill", daemon=True)
        self._thread.start()

    def close(self, timeout: float = 10.0) -> None:
        self._closed.set()
        self._need_refill.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "SamplePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- consumption ----------------------------------------------------------

    @property
    def level(self) -> int:
        with self._lock:
            return self._count

    def take(self, n: int) -> np.ndarray | None:
        """Pop ``n`` samples, or ``None`` when the pool cannot cover them."""
        if n < 0:
            raise ValueError("n must be >= 0")
        with self._lock:
            if n > self._count:
                self._stats.misses += 1
                # A miss is direct evidence demand exceeds the level; wake
                # the refill thread even above the watermark.
                self._need_refill.set()
                return None
            out = np.empty((n, self._buffer.shape[1]))
            first = min(n, self.capacity - self._head)
            out[:first] = self._buffer[self._head:self._head + first]
            if n > first:
                out[first:] = self._buffer[:n - first]
            self._head = (self._head + n) % self.capacity
            self._count -= n
            self._stats.hits += 1
            self._stats.served += n
            self._wake_refill_locked()
            return out

    def _wake_refill_locked(self) -> None:
        if self._count < self.low_watermark * self.capacity:
            self._need_refill.set()

    # -- production -----------------------------------------------------------

    def refill(self, n: int | None = None) -> int:
        """Generate up to ``n`` samples (default: one ``refill_batch``) into
        the buffer; returns how many were added.  Called by the background
        thread, or directly in tests (``autostart=False``)."""
        want = n if n is not None else self.refill_batch
        with self._lock:
            free = self.capacity - self._count
        count = min(want, free)
        if count <= 0:
            return 0
        images = self.ensemble.sample(count, self._rng)
        with self._lock:
            free = self.capacity - self._count
            count = min(count, free)
            write = (self._head + self._count) % self.capacity
            first = min(count, self.capacity - write)
            self._buffer[write:write + first] = images[:first]
            if count > first:
                self._buffer[:count - first] = images[first:count]
            self._count += count
            self._stats.refills += 1
            self._stats.generated += count
        return count

    def _refill_loop(self) -> None:
        while not self._closed.is_set():
            self._need_refill.wait()
            if self._closed.is_set():
                return
            self._need_refill.clear()
            while not self._closed.is_set():
                with self._lock:
                    below = self._count < self.capacity
                if not below:
                    break
                if self.refill() == 0:
                    break

    def stats(self) -> PoolStats:
        with self._lock:
            snapshot = PoolStats(**vars(self._stats))
            snapshot.level = self._count
            return snapshot
