"""Request coalescing: many small sample requests, few large forward passes.

The trainer amortizes forward-pass cost by batching latents; serving does
the same across *users*.  Concurrent :class:`SampleRequest`s are queued,
drained in groups by a small worker pool, and fused per mixture component:
all latent rows destined for generator ``g`` — across every request in the
group — run through ``g`` in one chunked matmul, then the output rows are
sliced back to their owners.

Determinism survives coalescing because each request's randomness is fixed
up-front by :func:`repro.serving.compute.build_plan` from its own seed, and
:func:`forward_rows` is bitwise row-stable — so the engine's answer equals
:meth:`ServableEnsemble.sample` exactly, no matter which strangers shared
the batch (asserted by ``tests/test_serving_engine.py``).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.analysis import lockcheck
from repro.serving.api import SampleRequest, ServerClosedError, ServerOverloadedError
from repro.serving.compute import assemble, build_plan, forward_rows
from repro.serving.registry import ServableEnsemble
from repro.telemetry import bus as telemetry

__all__ = ["BatchingEngine", "EngineStats"]

_SHUTDOWN = object()


@dataclass
class _Job:
    """One queued request, resolved to a concrete ensemble and seed."""

    request: SampleRequest
    ensemble: ServableEnsemble
    version: str
    seed: int
    future: Future = field(default_factory=Future)

    @property
    def weights(self) -> np.ndarray:
        if self.request.weights is not None:
            return self.ensemble.normalize_weights(self.request.weights)
        return self.ensemble.weights

    def deliver(self, images: np.ndarray | None = None,
                error: BaseException | None = None) -> bool:
        """Resolve this job's future, tolerating client-side cancellation.

        A cancelled or already-settled future is skipped silently — one
        client giving up must not poison the other requests coalesced into
        the same batch.  Returns whether the future was actually resolved.
        """
        future = self.future
        if future.done() or not future.set_running_or_notify_cancel():
            return False
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(images)
        return True


@dataclass
class EngineStats:
    """Counters describing how well coalescing is working."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    forward_calls: int = 0
    rows_forwarded: int = 0
    largest_batch_requests: int = 0

    @property
    def mean_requests_per_batch(self) -> float:
        return self.coalesced_requests / self.batches if self.batches else 0.0

    @property
    def mean_rows_per_forward(self) -> float:
        return self.rows_forwarded / self.forward_calls if self.forward_calls else 0.0


class BatchingEngine:
    """A bounded queue plus worker threads that fuse requests per generator.

    ``max_batch_samples`` caps the total sample count one drained group may
    hold; ``max_delay_s`` is how long a worker lingers for company after the
    first request arrives (the classic batching latency/throughput knob).
    ``max_pending`` bounds the queue — a full queue raises
    :class:`ServerOverloadedError` instead of growing without limit, which
    is the backpressure contract the server relies on.
    """

    def __init__(self, *, max_batch_samples: int = 4096, max_delay_s: float = 0.002,
                 workers: int = 2, max_pending: int = 256,
                 autostart: bool = True):
        if max_batch_samples < 1:
            raise ValueError("max_batch_samples must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_batch_samples = max_batch_samples
        self.max_delay_s = max_delay_s
        self.max_pending = max_pending
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._lock = threading.Lock()
        self._stats = EngineStats()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"serving-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        self._started = False
        if autostart:
            self.start()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (``autostart=False`` defers this for tests)."""
        with self._lock:
            if self._started or self._closed:
                return
            self._started = True
        for thread in self._threads:
            thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain the queue, and join the workers.

        Holding the lock while flipping ``_closed`` pairs with
        :meth:`submit` holding it across check-and-enqueue: any job that
        made it into the queue is ordered before the shutdown sentinels and
        therefore still executes; any later submit raises.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if started:
            for _ in self._threads:
                self._queue.put(_SHUTDOWN)
            for thread in self._threads:
                thread.join(timeout=timeout)
        else:
            # No workers will ever run: fail any queued jobs instead of
            # leaving their futures unresolved forever.
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not _SHUTDOWN:
                    job.deliver(error=ServerClosedError("engine is shut down"))

    def __enter__(self) -> "BatchingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -----------------------------------------------------------

    def submit(self, request: SampleRequest, ensemble: ServableEnsemble,
               version: str, seed: int) -> Future:
        """Enqueue one request; returns a future resolving to the images."""
        job = _Job(request=request, ensemble=ensemble, version=version, seed=seed)
        with self._lock:
            if self._closed:
                raise ServerClosedError("engine is shut down")
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise ServerOverloadedError(
                    f"request queue full ({self.max_pending} pending)"
                ) from None
            lockcheck.check_owned(self._lock, "BatchingEngine._stats")
            self._stats.submitted += 1
        if telemetry.enabled():
            telemetry.gauge("serving.queue_depth", self._queue.qsize())
        return job.future

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def stats(self) -> EngineStats:
        with self._lock:
            return EngineStats(**vars(self._stats))

    # -- the coalescing loop --------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            jobs = self._collect(first)
            try:
                self._execute(jobs)
            except BaseException as error:  # defensive: never kill the worker
                for job in jobs:
                    job.deliver(error=error)

    def _collect(self, first: _Job) -> list[_Job]:
        """Linger briefly after the first request to coalesce followers."""
        jobs = [first]
        total = first.request.n
        deadline = time.monotonic() + self.max_delay_s
        while total < self.max_batch_samples:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Keep the shutdown signal observable for this worker's
                # next loop turn (and for siblings).
                self._queue.put(item)
                break
            jobs.append(item)
            total += item.request.n
        return jobs

    def _execute(self, jobs: list[_Job]) -> None:
        with self._lock:
            lockcheck.check_owned(self._lock, "BatchingEngine._stats")
            self._stats.batches += 1
            self._stats.coalesced_requests += len(jobs)
            self._stats.largest_batch_requests = max(
                self._stats.largest_batch_requests, len(jobs)
            )
        if telemetry.enabled():
            telemetry.count("serving.batches")
            telemetry.count("serving.batch_requests", len(jobs))
            telemetry.gauge("serving.batch_size",
                            sum(job.request.n for job in jobs))
            telemetry.gauge("serving.queue_depth", self._queue.qsize())
        # Requests against different ensemble objects cannot share a matmul.
        groups: dict[int, list[_Job]] = {}
        for job in jobs:
            groups.setdefault(id(job.ensemble), []).append(job)
        with telemetry.span("serving.batch"):
            for group in groups.values():
                self._execute_group(group)

    def _execute_group(self, jobs: list[_Job]) -> None:
        ensemble = jobs[0].ensemble
        # Per-job planning: one request's bad weights override (or any other
        # per-request defect) fails that job alone, not its batch neighbors.
        plans: list = []
        planned: list[_Job] = []
        for job in jobs:
            try:
                plan = build_plan(job.request.n, job.weights,
                                  ensemble.latent_size,
                                  np.random.default_rng(job.seed))
            except Exception as error:
                with self._lock:
                    self._stats.failed += 1
                job.deliver(error=error)
                continue
            plans.append(plan)
            planned.append(job)
        jobs = planned
        if not jobs:
            return
        try:
            components = len(ensemble.generators)
            # One fused forward pass per mixture component.
            outputs: list[list[np.ndarray]] = [[] for _ in jobs]
            for g in range(components):
                stacks = [plan.latents[g] for plan in plans]
                stacked = np.concatenate(stacks, axis=0)
                merged = forward_rows(ensemble.generators[g], stacked)
                with self._lock:
                    self._stats.forward_calls += 1
                    self._stats.rows_forwarded += stacked.shape[0]
                lo = 0
                for j, stack in enumerate(stacks):
                    rows = stack.shape[0]
                    outputs[j].append(merged[lo:lo + rows])
                    lo += rows
            for job, plan, blocks in zip(jobs, plans, outputs):
                images = assemble(plan, blocks, ensemble.output_neurons)
                if job.deliver(images=images):
                    with self._lock:
                        self._stats.completed += 1
        except BaseException as error:
            # Count only jobs this error actually failed — some may already
            # have been delivered (or cancelled) before the fault.
            failed = sum(1 for job in jobs if job.deliver(error=error))
            with self._lock:
                self._stats.failed += failed
