"""Deterministic sampling primitives shared by every serving path.

The batching engine's whole point is to fuse many small requests into a few
large forward passes — but serving must stay *reproducible*: a request with
seed ``s`` has to receive bit-identical images whether it was served alone,
coalesced with strangers, or replayed tomorrow.  Two properties make that
possible:

1. **RNG isolation** — all randomness a request consumes (its per-generator
   multinomial split, its latent vectors, its output shuffle) is drawn from
   the request's own ``Generator`` in the fixed order implemented by
   :func:`build_plan`.  Batch composition never touches a request's stream.

2. **Row-stable forward passes** — BLAS gemm produces bit-identical rows
   regardless of which other rows share the batch, *except* for the 1-row
   case which takes the gemv path.  :func:`forward_rows` therefore pads
   single-row chunks to :data:`MIN_GEMM_ROWS` so every matmul stays on the
   gemm path, making ``forward(concat(a, b)) == concat(forward(a),
   forward(b))`` hold bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gan.networks import Generator
from repro.nn import Tensor
from repro.nn.autograd import no_grad
from repro.registry import dtype_policy

__all__ = ["MIN_GEMM_ROWS", "SamplePlan", "build_plan", "forward_rows", "assemble"]

#: Minimum rows per matmul: 1-row inputs hit BLAS's gemv path whose summation
#: order differs bitwise from gemm, breaking batched-vs-unbatched identity.
MIN_GEMM_ROWS = 2


@dataclass
class SamplePlan:
    """A request's full randomness, fixed before any forward pass runs.

    ``latents[i]`` holds the latent rows destined for mixture component
    ``i`` (possibly zero rows); ``permutation`` shuffles the concatenated
    outputs so samples are not grouped by component.
    """

    counts: np.ndarray
    latents: list[np.ndarray]
    permutation: np.ndarray

    @property
    def total(self) -> int:
        return int(self.counts.sum())


def build_plan(n: int, weights: np.ndarray, latent_size: int,
               rng: np.random.Generator) -> SamplePlan:
    """Draw a request's randomness in the canonical order.

    Consumption order (multinomial split, then each component's latents in
    component order, then the output permutation) is part of the serving
    contract: both the direct path (:meth:`ServableEnsemble.sample`) and the
    coalesced path (:class:`BatchingEngine`) call this function, so a given
    ``(seed, n, weights)`` always maps to the same plan.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    weights = np.asarray(weights, dtype=np.float64)
    counts = rng.multinomial(n, weights)
    latents = [rng.standard_normal((int(count), latent_size)) for count in counts]
    permutation = rng.permutation(n)
    return SamplePlan(counts=counts, latents=latents, permutation=permutation)


def forward_rows(generator: Generator, latents: np.ndarray,
                 chunk: int = 512) -> np.ndarray:
    """Forward latent rows through ``generator``, row-stable and chunked.

    Results are bitwise independent of how rows are grouped into calls, so
    the engine may stack many requests' latents into one pass and slice the
    output apart afterwards.

    Serving inherits the servable's dtype policy: latents (drawn float64
    for RNG-stream parity) are cast to the generator's compute dtype once
    per chunk, and the output lands in that dtype.
    """
    n = latents.shape[0]
    out_width = generator.settings.output_neurons
    dtype = np.dtype(dtype_policy(
        getattr(generator.settings, "dtype", "float64")).compute)
    if n == 0:
        return np.empty((0, out_width), dtype=dtype)
    out = np.empty((n, out_width), dtype=dtype)
    with no_grad():
        for lo in range(0, n, chunk):
            block = np.ascontiguousarray(latents[lo:lo + chunk], dtype=dtype)
            rows = block.shape[0]
            if rows < MIN_GEMM_ROWS:
                pad = np.zeros((MIN_GEMM_ROWS - rows, block.shape[1]),
                               dtype=dtype)
                block = np.concatenate([block, pad], axis=0)
            out[lo:lo + rows] = generator(Tensor(block)).numpy()[:rows]
    return out


def assemble(plan: SamplePlan, blocks: list[np.ndarray], out_width: int) -> np.ndarray:
    """Concatenate per-component outputs and apply the plan's shuffle."""
    if plan.total == 0:
        return np.empty((0, out_width))
    images = np.concatenate([b for b in blocks if b.shape[0]], axis=0)
    return images[plan.permutation]
