"""The serving front door: routing, caching, backpressure, statistics.

:class:`GeneratorServer` wires the registry, the LRU cache, the optional
sample pool and the batching engine into one object with the interface a
network endpoint would wrap:

* ``submit(...)`` — non-blocking; returns a future of a
  :class:`SampleResponse` (or raises :class:`ServerOverloadedError` when
  the bounded queue is full — reject-when-full backpressure).
* ``request(...)`` — the blocking convenience wrapper.
* ``promote(version)`` — atomic hot-swap of the version anonymous traffic
  is served from; the seedless pool is rebuilt for the new version.
* ``stats()`` — a :class:`ServerStats` snapshot: throughput, p50/p95
  latency, queue depth and cache hit rates.

Request routing: seeded requests (deterministic) are looked up in the LRU
first and inserted after computation; seedless requests try the pool; every
miss goes to the engine, which coalesces concurrent misses into large fused
forward passes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from repro.profiling.timer import RoutineTimer, TimerSnapshot
from repro.runtime import pin_blas_threads
from repro.serving.api import (
    SampleRequest,
    SampleResponse,
    ServerClosedError,
    ServerOverloadedError,
    ServerStats,
    _percentile,
)
from repro.serving.cache import LRUSampleCache, SamplePool
from repro.serving.engine import BatchingEngine
from repro.serving.registry import ModelRegistry, ServableEnsemble
from repro.telemetry import bus as telemetry

__all__ = ["GeneratorServer"]

#: Seeds for seedless requests are drawn above this bound so they can never
#: collide with a client-chosen (cacheable) seed by accident.
_EPHEMERAL_SEED_BASE = 2 ** 48


class GeneratorServer:
    """Serve samples from a registry of trained generator ensembles."""

    def __init__(self, source: ModelRegistry | ServableEnsemble, *,
                 version: str = "v1", max_pending: int = 256, workers: int = 2,
                 max_batch_samples: int = 4096, max_delay_s: float = 0.002,
                 lru_capacity: int = 256, pool_capacity: int = 0,
                 pool_refill_batch: int = 256, seed: int = 0,
                 max_request_samples: int = 65_536, autostart: bool = True):
        # Single-threaded BLAS is what makes gemm row-stable — the
        # foundation of the batched == unbatched determinism guarantee
        # (repro.serving.compute).  Both trainers pin; so does serving.
        pin_blas_threads(1)
        if isinstance(source, ServableEnsemble):
            registry = ModelRegistry()
            registry.register(version, source, promote=True)
            source = registry
        self.registry: ModelRegistry = source
        self.engine = BatchingEngine(
            max_batch_samples=max_batch_samples, max_delay_s=max_delay_s,
            workers=workers, max_pending=max_pending, autostart=autostart,
        )
        self.lru = LRUSampleCache(lru_capacity) if lru_capacity > 0 else None
        if self.lru is not None:
            # Replacing/evicting a version orphans its uid-keyed entries;
            # drop them eagerly instead of letting them squat on the budget.
            self.registry.subscribe(self.lru.invalidate)
        if max_request_samples < 1:
            raise ValueError("max_request_samples must be >= 1")
        self.max_request_samples = max_request_samples
        self._pool_capacity = pool_capacity
        self._pool_refill_batch = pool_refill_batch
        self._pool_autostart = autostart
        self._pool: SamplePool | None = None
        self._seed_rng = np.random.default_rng(seed)  # guarded by _lock
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=4096)
        self._timer = RoutineTimer()
        self._requests = 0
        self._rejected = 0
        self._samples = 0
        self._pool_hits = 0
        self._pool_misses = 0
        self._start = time.monotonic()
        self._closed = False
        if pool_capacity > 0 and self.registry.active_version is not None:
            self._ensure_pool()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.lru is not None:
            # Stop a shared, caller-owned registry from retaining (and
            # notifying) this server's cache after shutdown.
            self.registry.unsubscribe(self.lru.invalidate)
        self.engine.close()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "GeneratorServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- model lifecycle ------------------------------------------------------

    def promote(self, version: str) -> None:
        """Hot-swap the active version; the seedless pool follows it.

        Idempotent: re-promoting the already-active version keeps the
        existing pool (and its pre-generated samples) intact.
        """
        self.registry.promote(version)
        if self._pool_capacity > 0:
            self._ensure_pool()

    def _ensure_pool(self) -> None:
        # Resolve *inside* the lock: concurrent promote() calls serialize
        # here, and each re-resolves the then-active version, so the last
        # rebuild always leaves the pool matching the final active model.
        with self._lock:
            _, ensemble = self.registry.resolve(None)
            if self._pool is not None and self._pool.ensemble is ensemble:
                return
            old = self._pool
            self._pool = SamplePool(
                ensemble, capacity=self._pool_capacity,
                refill_batch=self._pool_refill_batch,
                seed=int(self._seed_rng.integers(2 ** 32)),
                autostart=self._pool_autostart,
            )
        if old is not None:
            old.close()

    @property
    def pool(self) -> SamplePool | None:
        return self._pool

    # -- the request path -----------------------------------------------------

    def submit(self, n: int, *, seed: int | None = None,
               version: str | None = None,
               weights: np.ndarray | None = None) -> "Future[SampleResponse]":
        """Route one request; returns a future of the response."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is shut down")
        if n > self.max_request_samples:
            # Backpressure bounds the queue in requests; this bounds the
            # memory one request can demand.
            raise ValueError(
                f"n={n} exceeds max_request_samples="
                f"{self.max_request_samples}"
            )
        start = time.monotonic()
        resolved_version, ensemble = self.registry.resolve(version)
        if weights is not None:
            ensemble.normalize_weights(weights)  # fail fast, before enqueue
        request = SampleRequest(n=n, seed=seed, version=resolved_version,
                                weights=weights)

        # 1. Deterministic requests: exact-hit LRU.  The key includes the
        # ensemble's uid so re-registering a version can't serve stale bits.
        key = request.cache_key
        if key is not None:
            key = key + (ensemble.uid,)
        if key is not None and self.lru is not None:
            images = self.lru.get(key)
            if images is not None:
                return self._immediate(request, images, "lru", start)

        # 2. Anonymous requests: the pre-generated pool.  Created lazily so
        # a registry that gained its first model *after* server construction
        # still gets one.  Matching on the resolved ensemble *object* (not
        # the version name) means a concurrent promote() or re-register can
        # never pair an old pool's samples with the new model.
        # Only unpinned requests are pool-eligible (the pool tracks the
        # active version); a request pinned to a non-active version would
        # otherwise re-run the ensure dance on every call for nothing.
        if request.seed is None and weights is None and version is None:
            with self._lock:
                pool = self._pool
            if self._pool_capacity > 0 \
                    and (pool is None or pool.ensemble is not ensemble):
                # Lazy create / freshen only when the pool doesn't already
                # match — the steady-state hit path skips the extra resolve.
                self._ensure_pool()
                with self._lock:
                    pool = self._pool
            if pool is not None and pool.ensemble is ensemble:
                images = pool.take(n)
                if images is not None:
                    with self._lock:
                        self._pool_hits += 1
                    return self._immediate(request, images, "pool", start)
                with self._lock:
                    self._pool_misses += 1

        # 3. Everything else: the batching engine (backpressure may raise).
        if request.seed is not None:
            engine_seed = request.seed
        else:
            with self._lock:  # np.random.Generator is not thread-safe
                engine_seed = _EPHEMERAL_SEED_BASE + int(
                    self._seed_rng.integers(2 ** 32)
                )
        try:
            inner = self.engine.submit(request, ensemble, resolved_version,
                                       engine_seed)
        except ServerOverloadedError:
            # Only genuine backpressure counts as a rejection; a close()
            # racing this submit propagates without skewing the stats.
            with self._lock:
                self._rejected += 1
            raise
        outer: Future = Future()

        def _finish(done: Future) -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            images = done.result()
            if key is not None and self.lru is not None:
                self.lru.put(key, images)
            outer.set_result(self._record(request, images, None, start))

        inner.add_done_callback(_finish)
        return outer

    def request(self, n: int, *, seed: int | None = None,
                version: str | None = None,
                weights: np.ndarray | None = None,
                timeout: float | None = 60.0) -> SampleResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(n, seed=seed, version=version,
                           weights=weights).result(timeout=timeout)

    # -- bookkeeping ----------------------------------------------------------

    def _record(self, request: SampleRequest, images: np.ndarray,
                cached: str | None, start: float) -> SampleResponse:
        latency = time.monotonic() - start
        with self._lock:
            self._requests += 1
            self._samples += images.shape[0]
            self._latencies.append(latency)
            # Per-path serve time in the paper's profiling vocabulary
            # (repro.profiling.timer); see :meth:`profile`.
            self._timer.add(cached or "engine", latency)
        if telemetry.enabled():
            telemetry.count("serving.requests")
            telemetry.count("serving.samples", images.shape[0])
        return SampleResponse(images=images, version=request.version,
                              cached=cached, latency_s=latency)

    def profile(self) -> "TimerSnapshot":
        """Cumulative serve time split by path (``engine``/``lru``/``pool``)."""
        with self._lock:
            return self._timer.snapshot()

    def _immediate(self, request: SampleRequest, images: np.ndarray,
                   cached: str, start: float) -> "Future[SampleResponse]":
        future: Future = Future()
        future.set_result(self._record(request, images, cached, start))
        return future

    def stats(self) -> ServerStats:
        lru_stats = self.lru.stats() if self.lru is not None else None
        engine_stats = self.engine.stats()
        with self._lock:
            latencies = list(self._latencies)
            return ServerStats(
                uptime_s=time.monotonic() - self._start,
                requests=self._requests,
                rejected=self._rejected,
                samples=self._samples,
                queue_depth=self.engine.queue_depth,
                p50_latency_s=_percentile(latencies, 50),
                p95_latency_s=_percentile(latencies, 95),
                lru_hits=lru_stats.hits if lru_stats else 0,
                lru_misses=lru_stats.misses if lru_stats else 0,
                pool_hits=self._pool_hits,
                pool_misses=self._pool_misses,
                engine_batches=engine_stats.batches,
                engine_requests=engine_stats.coalesced_requests,
                versions=self.registry.versions(),
                active_version=self.registry.active_version,
            )
