"""Formatting profiles into the paper's Table IV and Fig. 4 series."""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.timer import PAPER_ROUTINES, TimerSnapshot

__all__ = ["ProfileRow", "profile_rows", "format_table4", "format_fig4_series"]

#: Display names used by the paper's Table IV, keyed by internal routine name.
DISPLAY_NAMES = {
    "gather": "gather",
    "train": "train",
    "update_genomes": "update genomes",
    "mutate": "mutate",
}


@dataclass(frozen=True)
class ProfileRow:
    """One row of Table IV."""

    routine: str
    single_core_s: float
    distributed_s: float

    @property
    def acceleration(self) -> float:
        """Relative time reduction vs single core (the paper's 'acceleration')."""
        if self.single_core_s <= 0:
            return 0.0
        return max(0.0, 1.0 - self.distributed_s / self.single_core_s)

    @property
    def speedup(self) -> float:
        if self.distributed_s <= 0:
            return float("inf")
        return self.single_core_s / self.distributed_s


def profile_rows(single: TimerSnapshot, distributed: TimerSnapshot) -> list[ProfileRow]:
    """Build Table IV rows (four routines + overall) from two snapshots."""
    rows = [
        ProfileRow(
            routine=DISPLAY_NAMES[name],
            single_core_s=single.seconds(name),
            distributed_s=distributed.seconds(name),
        )
        for name in PAPER_ROUTINES
    ]
    rows.append(
        ProfileRow(
            routine="overall",
            single_core_s=sum(r.single_core_s for r in rows),
            distributed_s=sum(r.distributed_s for r in rows),
        )
    )
    return rows


def format_table4(rows: list[ProfileRow], unit: str = "s") -> str:
    """Render rows in the layout of the paper's Table IV."""
    header = f"{'routine':<16} {'single core':>12} {'distributed':>12} {'acceleration':>13} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.routine:<16} {row.single_core_s:>10.2f}{unit} {row.distributed_s:>10.2f}{unit}"
            f" {row.acceleration * 100:>12.1f}% {row.speedup:>8.2f}"
        )
    return "\n".join(lines)


def format_fig4_series(rows: list[ProfileRow]) -> dict[str, list]:
    """The two bar series of the paper's Fig. 4 (same data as Table IV)."""
    routines = [r.routine for r in rows if r.routine != "overall"]
    return {
        "routines": routines,
        "single_core": [r.single_core_s for r in rows if r.routine != "overall"],
        "distributed": [r.distributed_s for r in rows if r.routine != "overall"],
    }
