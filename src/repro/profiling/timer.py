"""Wall-clock section timers with negligible overhead in the hot loop.

Usage::

    timer = RoutineTimer()
    with timer.section("train"):
        ...gradient steps...

Timers are additive across entries and picklable via :class:`TimerSnapshot`
so every slave can ship its profile to the master for aggregation
(:func:`merge_snapshots`), which is how the distributed column of Table IV
is assembled.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

__all__ = [
    "RoutineTimer",
    "TimerSnapshot",
    "NULL_TIMER",
    "merge_snapshots",
    "snapshot_from_telemetry",
]

#: The paper's four profiled routines, in Table IV order.
PAPER_ROUTINES = ("gather", "train", "update_genomes", "mutate")

#: Telemetry span name -> Table IV routine (the bus records at span
#: granularity; this projects back into the paper's vocabulary).
_SPAN_ROUTINES = {
    "exchange.gather": "gather",
    "cell.train": "train",
    "cell.update_genomes": "update_genomes",
    "cell.mutate": "mutate",
}


@dataclass
class TimerSnapshot:
    """Picklable totals: routine name -> (seconds, call count)."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def seconds(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self.counts.get(name, 0)

    @property
    def overall(self) -> float:
        return sum(self.totals.values())


class RoutineTimer:
    """Accumulates wall time per named section."""

    __slots__ = ("_totals", "_counts")

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextlib.contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Manually add time (used when a section is measured externally)."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + calls

    def seconds(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def snapshot(self) -> TimerSnapshot:
        return TimerSnapshot(dict(self._totals), dict(self._counts))

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()


class _NullTimer(RoutineTimer):
    """A timer that records nothing (default when profiling is off).

    ``section`` still works as a context manager but skips the clock reads,
    keeping the un-profiled hot path free of bookkeeping.
    """

    @contextlib.contextmanager
    def section(self, name: str):
        yield

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        pass


NULL_TIMER = _NullTimer()


def merge_snapshots(snapshots: list[TimerSnapshot], *, parallel: bool = False) -> TimerSnapshot:
    """Combine per-slave snapshots into one profile.

    With ``parallel=False`` times are summed (total CPU work — the single
    core column).  With ``parallel=True`` the *maximum* per routine is taken:
    slaves run concurrently, so the wall time of a routine across the system
    is the slowest slave's time (the distributed column of Table IV).
    """
    merged = TimerSnapshot()
    for snap in snapshots:
        for name, seconds in snap.totals.items():
            if parallel:
                merged.totals[name] = max(merged.totals.get(name, 0.0), seconds)
            else:
                merged.totals[name] = merged.totals.get(name, 0.0) + seconds
        for name, count in snap.counts.items():
            merged.counts[name] = merged.counts.get(name, 0) + count
    return merged


def snapshot_from_telemetry(snapshot) -> TimerSnapshot:
    """Thin adapter: a Table IV :class:`TimerSnapshot` from a bus snapshot.

    Takes a :class:`repro.telemetry.bus.TelemetrySnapshot` and projects its
    span totals into the paper's routine vocabulary, so Table IV rendering
    (:func:`repro.profiling.table.profile_rows`) works off the unified bus
    exactly as it does off a :class:`RoutineTimer`.
    """
    result = TimerSnapshot()
    for span_name, seconds in snapshot.span_totals.items():
        routine = _SPAN_ROUTINES.get(span_name)
        if routine is None:
            continue
        result.totals[routine] = result.totals.get(routine, 0.0) + seconds
        result.counts[routine] = (result.counts.get(routine, 0)
                                  + snapshot.span_counts.get(span_name, 0))
    return result
