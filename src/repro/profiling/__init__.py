"""Routine-level profiling (paper Table IV / Fig. 4).

The paper profiles four dominant routines of the training loop — ``gather``
(MPI allgather of neighbor results), ``train`` (gradient steps), ``update
genomes`` (copying gathered parameters into the sub-population) and
``mutate`` (hyperparameter + mixture mutation) — and compares single-core
vs distributed times.  :class:`RoutineTimer` collects exactly those wall
times; :mod:`repro.profiling.report` formats them into the paper's table
and bar-chart series.
"""

from repro.profiling.timer import (
    NULL_TIMER,
    RoutineTimer,
    TimerSnapshot,
    merge_snapshots,
    snapshot_from_telemetry,
)
from repro.profiling.report import ProfileRow, profile_rows, format_table4, format_fig4_series

__all__ = [
    "RoutineTimer",
    "TimerSnapshot",
    "NULL_TIMER",
    "merge_snapshots",
    "snapshot_from_telemetry",
    "ProfileRow",
    "profile_rows",
    "format_table4",
    "format_fig4_series",
]
