"""The master's heartbeat thread (paper Section III-B and Fig. 3).

"During the execution, the master periodically performs control activities
to determine if all slaves are working properly, are on time, or are
delayed ... handled by a thread of the master process (the heartbeat
thread), in order to perform the system monitoring in background, without
interfering with the main processing."

:class:`HeartbeatMonitor` runs that loop: every ``interval`` it sends a
status request to each still-processing slave, drains the replies, and
tracks per-slave liveness.  A slave that misses ``miss_limit`` consecutive
rounds is declared dead; if failure detection is enabled the monitor then
asks the master to abort the remaining slaves gracefully.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.parallel.comm_manager import CommManager
from repro.parallel.states import SlaveState

__all__ = ["SlaveLiveness", "HeartbeatMonitor"]


@dataclass
class SlaveLiveness:
    """What the master knows about one slave."""

    rank: int
    state: str = SlaveState.INACTIVE.value
    iteration: int = 0
    last_reply_at: float = field(default_factory=time.monotonic)
    missed_rounds: int = 0
    dead: bool = False

    @property
    def finished(self) -> bool:
        return self.state == SlaveState.FINISHED.value

    @property
    def accounted(self) -> bool:
        """No further monitoring needed for this slave."""
        return self.finished or self.dead


class HeartbeatMonitor:
    """Background liveness monitoring, one instance inside the master."""

    def __init__(self, comm: CommManager, slave_ranks: list[int], *,
                 interval_s: float = 0.25, miss_limit: int = 8):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        if miss_limit < 1:
            raise ValueError("miss_limit must be >= 1")
        self.comm = comm
        self.interval_s = interval_s
        self.miss_limit = miss_limit
        self.liveness: dict[int, SlaveLiveness] = {
            rank: SlaveLiveness(rank) for rank in slave_ranks
        }
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name="heartbeat", daemon=True)
        self.deaths_detected = threading.Event()

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    # -- queries (thread-safe) ---------------------------------------------------------

    def snapshot(self) -> dict[int, SlaveLiveness]:
        with self._lock:
            return {
                rank: SlaveLiveness(rank=l.rank, state=l.state, iteration=l.iteration,
                                    last_reply_at=l.last_reply_at,
                                    missed_rounds=l.missed_rounds, dead=l.dead)
                for rank, l in self.liveness.items()
            }

    def all_accounted(self) -> bool:
        with self._lock:
            return all(l.accounted for l in self.liveness.values())

    def dead_ranks(self) -> list[int]:
        with self._lock:
            return [rank for rank, l in self.liveness.items() if l.dead]

    def mark_finished(self, rank: int) -> bool:
        """Called by the master's main thread when a result arrives — result
        reception is the authoritative end-of-execution signal.

        A result beats a concurrent death declaration: a slave that went
        quiet during its final iterations (long batch, loaded node) can
        exhaust the miss budget *after* its FINISHED result is already in
        flight.  Clearing ``dead`` here resurrects such a rank; the master
        re-reads :meth:`dead_ranks` before acting on ``deaths_detected`` so
        a resurrected rank is never aborted or migrated.  Returns whether a
        death declaration was overturned.
        """
        with self._lock:
            entry = self.liveness[rank]
            entry.state = SlaveState.FINISHED.value
            entry.missed_rounds = 0
            resurrected = entry.dead
            entry.dead = False
        return resurrected

    def revive(self, rank: int) -> None:
        """Put a respawned rank back under monitoring (recover policy)."""
        with self._lock:
            entry = self.liveness[rank]
            entry.dead = False
            entry.missed_rounds = 0
            entry.state = SlaveState.PROCESSING.value
            entry.last_reply_at = time.monotonic()

    def retire(self, rank: int) -> None:
        """Stop monitoring a gracefully drained rank.

        A drain is a planned departure: the rank is accounted (so the
        monitor stops requesting its status and :meth:`all_accounted` can
        complete) but *not* dead — ``dead_ranks`` must stay empty for a
        run whose only churn was voluntary.
        """
        with self._lock:
            entry = self.liveness[rank]
            entry.state = SlaveState.FINISHED.value
            entry.missed_rounds = 0
            entry.dead = False

    # -- the heartbeat loop ---------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                targets = [l.rank for l in self.liveness.values() if not l.accounted]
            if not targets:
                return
            for rank in targets:
                self.comm.request_status(rank)
            # Give slaves one interval to answer, then account.
            self._stop.wait(self.interval_s)
            replied = set()
            for reply in self.comm.drain_status_replies():
                replied.add(reply.rank)
                with self._lock:
                    entry = self.liveness.get(reply.rank)
                    if entry is None or entry.accounted:
                        continue
                    entry.state = reply.state
                    entry.iteration = reply.iteration
                    entry.last_reply_at = time.monotonic()
                    entry.missed_rounds = 0
            newly_dead = []
            with self._lock:
                for rank in targets:
                    entry = self.liveness[rank]
                    if rank in replied or entry.accounted:
                        continue
                    entry.missed_rounds += 1
                    if entry.missed_rounds >= self.miss_limit:
                        entry.dead = True
                        newly_dead.append(rank)
            if newly_dead:
                self.deaths_detected.set()
