"""Execution-event tracing (reproduces the flow of the paper's Fig. 3).

Master and slaves append timestamped events at every protocol step; slave
traces travel to the master inside :class:`~repro.parallel.messages.SlaveResult`
and are merged into one global, time-ordered trace.  The Fig. 3 experiment
prints that merged trace, which follows the paper's flow diagram:

    master: create heartbeat thread        slave: send node name to master
    master: send run task                  slave: assemble execution grid
    ...                                    slave: train one iteration
                                           slave: get results from neighbours
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "EventTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One step of the protocol, as drawn in Fig. 3."""

    at: float
    actor: str
    event: str
    detail: str = ""

    def format(self, t0: float = 0.0) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{self.at - t0:9.4f}s] {self.actor:<10} {self.event}{suffix}"


@dataclass
class EventTrace:
    """An append-only event log for one actor (picklable)."""

    actor: str
    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: str, detail: str = "") -> None:
        if self.enabled:
            self.events.append(TraceEvent(time.time(), self.actor, event, detail))

    @staticmethod
    def merged(traces: list["EventTrace"]) -> list[TraceEvent]:
        """All events of all actors in global time order."""
        events: list[TraceEvent] = []
        for trace in traces:
            events.extend(trace.events)
        return sorted(events, key=lambda e: e.at)

    @staticmethod
    def format_merged(traces: list["EventTrace"]) -> str:
        events = EventTrace.merged(traces)
        if not events:
            return "(empty trace)"
        t0 = events[0].at
        return "\n".join(event.format(t0) for event in events)
