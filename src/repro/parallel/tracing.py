"""Execution-event tracing (reproduces the flow of the paper's Fig. 3).

Master and slaves append timestamped events at every protocol step; slave
traces travel to the master inside :class:`~repro.parallel.messages.SlaveResult`
and are merged into one global, time-ordered trace.  The Fig. 3 experiment
prints that merged trace, which follows the paper's flow diagram:

    master: create heartbeat thread        slave: send node name to master
    master: send run task                  slave: assemble execution grid
    ...                                    slave: train one iteration
                                           slave: get results from neighbours

Clock discipline: every event carries a ``time.monotonic()`` stamp, and each
actor records **one** wall-clock anchor (a back-to-back wall/monotonic pair
taken at its first event).  Merging aligns events as
``anchor_wall + (mono - anchor_mono)``, so an NTP step or wall-clock skew
mid-run cannot reorder an actor's events — only the single anchor sample
contributes wall-clock error, and within-actor ordering is strictly
monotone.  Legacy events (``mono == 0``) fall back to their raw wall stamp.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "EventTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One step of the protocol, as drawn in Fig. 3."""

    at: float
    actor: str
    event: str
    detail: str = ""
    mono: float = 0.0
    """``time.monotonic()`` at capture; 0.0 marks a legacy wall-only event."""

    def format(self, t0: float = 0.0, at: float | None = None) -> str:
        shown = self.at if at is None else at
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{shown - t0:9.4f}s] {self.actor:<10} {self.event}{suffix}"


@dataclass
class EventTrace:
    """An append-only event log for one actor (picklable)."""

    actor: str
    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True
    anchor_wall: float = 0.0
    """Wall clock at this actor's first event (the per-actor anchor)."""
    anchor_mono: float = 0.0
    """Monotonic clock read back-to-back with :attr:`anchor_wall`."""

    def __post_init__(self) -> None:
        # A trace rebuilt from a shipped event list (SlaveResult) lost its
        # anchor fields — but the first event's wall/mono pair *is* the
        # anchor taken back-to-back at first record, so recover it.
        # getattr: legacy pickles (and test sentinels) predate the mono field.
        if (self.anchor_mono == 0.0 and self.events
                and getattr(self.events[0], "mono", 0.0)):
            self.anchor_wall = self.events[0].at
            self.anchor_mono = self.events[0].mono

    def record(self, event: str, detail: str = "") -> None:
        if not self.enabled:
            return
        mono = time.monotonic()
        wall = time.time()
        if self.anchor_mono == 0.0:
            self.anchor_wall, self.anchor_mono = wall, mono
        self.events.append(TraceEvent(wall, self.actor, event, detail, mono))

    def aligned_at(self, event: TraceEvent) -> float:
        """The event's time on the merged wall-clock axis.

        Monotonic delta from this actor's single anchor; raw wall stamp
        for legacy events recorded before the anchor discipline existed.
        """
        if getattr(event, "mono", 0.0) and self.anchor_mono:
            return self.anchor_wall + (event.mono - self.anchor_mono)
        return event.at

    @staticmethod
    def _aligned(traces: list["EventTrace"]) -> list[tuple[float, TraceEvent]]:
        pairs = [(trace.aligned_at(event), event)
                 for trace in traces for event in trace.events]
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    @staticmethod
    def merged(traces: list["EventTrace"]) -> list[TraceEvent]:
        """All events of all actors in global (skew-aligned) time order."""
        return [event for _at, event in EventTrace._aligned(traces)]

    @staticmethod
    def format_merged(traces: list["EventTrace"]) -> str:
        pairs = EventTrace._aligned(traces)
        if not pairs:
            return "(empty trace)"
        t0 = pairs[0][0]
        return "\n".join(event.format(t0, at) for at, event in pairs)
