"""The paper's contribution: master-slave distributed cellular GAN training.

This package is the reproduction of Section III of the paper — the
parallel/distributed implementation of Mustangs/Lipizzaner:

* :mod:`repro.parallel.grid` — the new ``Grid`` class (replaces
  Lipizzaner's ``neighbourhood``): each slave's view of the training grid,
  with *dynamic* neighborhood rewiring, fully decoupled from communication.
* :mod:`repro.parallel.comm_manager` — the new ``CommManager`` class
  (replaces ``node-comm``): every inter-process interaction behind an
  abstract interface, MPI underneath, including the WORLD / LOCAL / GLOBAL
  communicator split of Section III-D.
* :mod:`repro.parallel.master` / :mod:`repro.parallel.slave` — the two
  process roles of Section III-B, with the slave's two-thread design (main
  thread = master interface, execution thread = training) and the
  ``inactive -> processing -> finished`` state machine of Fig. 2.
* :mod:`repro.parallel.heartbeat` — the master's heartbeat thread and the
  liveness protocol, including failure detection and graceful abort.
* :mod:`repro.parallel.runner` — one-call entry point running the whole
  job over any registered MPI transport: process (true parallel), threaded
  (deterministic), or socket (TCP workers on one or many machines).
"""

from repro.parallel.grid import Grid
from repro.parallel.comm_manager import CommManager, MpiCommManager
from repro.parallel.messages import (
    NodeInfo,
    RunTask,
    SlaveResult,
    StatusReply,
    Tags,
)
from repro.parallel.states import SlaveState, SlaveStateMachine
from repro.parallel.heartbeat import HeartbeatMonitor, SlaveLiveness
from repro.parallel.master import MasterProcess
from repro.parallel.slave import SlaveProcess
from repro.parallel.runner import DistributedResult, DistributedRunner
from repro.parallel.tracing import EventTrace, TraceEvent

__all__ = [
    "Grid",
    "CommManager",
    "MpiCommManager",
    "Tags",
    "NodeInfo",
    "RunTask",
    "StatusReply",
    "SlaveResult",
    "SlaveState",
    "SlaveStateMachine",
    "HeartbeatMonitor",
    "SlaveLiveness",
    "MasterProcess",
    "SlaveProcess",
    "DistributedRunner",
    "DistributedResult",
    "EventTrace",
    "TraceEvent",
]
