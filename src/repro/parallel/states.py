"""The slave state machine of the paper's Fig. 2.

Slaves have exactly three states:

* ``inactive`` — no workload received yet;
* ``processing`` — performing the assigned training;
* ``finished`` — done, waiting for the master to gather results.

Transitions: ``inactive -> processing`` on a *run task* message and
``processing -> finished`` after the last training iteration.  The state
machine records its transition history so the Fig. 2 experiment can print
the observed diagram and tests can assert illegal transitions are rejected.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field

__all__ = ["SlaveState", "SlaveStateMachine", "IllegalTransition", "TRANSITIONS"]


class SlaveState(enum.Enum):
    INACTIVE = "inactive"
    PROCESSING = "processing"
    FINISHED = "finished"


#: The legal transitions and the events that trigger them (paper Fig. 2).
TRANSITIONS: dict[tuple[SlaveState, SlaveState], str] = {
    (SlaveState.INACTIVE, SlaveState.PROCESSING): "run task message",
    (SlaveState.PROCESSING, SlaveState.FINISHED): "last iteration performed",
}


class IllegalTransition(RuntimeError):
    """Raised on a transition not present in the paper's Fig. 2."""


@dataclass
class Transition:
    source: SlaveState
    target: SlaveState
    event: str
    at: float = field(default_factory=time.monotonic)


class SlaveStateMachine:
    """Thread-safe state holder shared by a slave's two threads."""

    def __init__(self) -> None:
        self._state = SlaveState.INACTIVE
        self._lock = threading.Lock()
        self.history: list[Transition] = []

    @property
    def state(self) -> SlaveState:
        with self._lock:
            return self._state

    def to(self, target: SlaveState) -> None:
        with self._lock:
            key = (self._state, target)
            event = TRANSITIONS.get(key)
            if event is None:
                raise IllegalTransition(f"{self._state.value} -> {target.value}")
            self.history.append(Transition(self._state, target, event))
            self._state = target

    def start_processing(self) -> None:
        """``inactive -> processing`` (run task received)."""
        self.to(SlaveState.PROCESSING)

    def finish(self) -> None:
        """``processing -> finished`` (last iteration performed)."""
        self.to(SlaveState.FINISHED)
