"""``CommManager``: every inter-process interaction behind one interface.

The paper replaces Lipizzaner's ``node-comm`` (a client/server layer where
every slave binds a port) with a ``comm-manager`` class that "implements all
communications and synchronization in an abstract way, using underlying MPI
functions".  :class:`CommManager` is that abstract interface;
:class:`MpiCommManager` is the MPI implementation over :mod:`repro.mpi`.

Three communication contexts, exactly as in Section III-D:

* **WORLD** — job setup, run-task messages, status control, results;
* **LOCAL** — only the active slaves; carries the per-iteration genome
  exchange (the profiled ``gather`` routine) without involving the master;
* **GLOBAL** — master + all slaves; final collective operations.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import TYPE_CHECKING

from repro.mpi import ANY_SOURCE, Comm, MpiTimeoutError
from repro.mpi.stats import payload_nbytes
from repro.parallel.grid import Grid
from repro.parallel.messages import ExchangePayload, NodeInfo, RunTask, SlaveResult, StatusReply, Tags
from repro.profiling import NULL_TIMER, RoutineTimer
from repro.telemetry import bus as telemetry

from repro.parallel.recovery import RESYNC_TIMEOUT_S

if TYPE_CHECKING:  # type-only: recovery types never constructed here
    from repro.coevolution.checkpoint import CellSnapshot
    from repro.parallel.recovery import FaultNotice, FaultState

__all__ = ["CommManager", "MpiCommManager", "ExchangeAborted", "EXCHANGE_MODES"]

EXCHANGE_MODES = ("neighbors", "allgather", "async")


class ExchangeAborted(RuntimeError):
    """Raised inside the execution thread when the master aborted the job."""


class CommManager:
    """Abstract communication interface (transport-agnostic).

    The ``Grid`` never touches this class and this class never inspects
    grid internals beyond the public topology queries — the decoupling the
    paper calls out explicitly.
    """

    # -- identity ------------------------------------------------------------

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def is_master(self) -> bool:
        return self.rank == 0

    # -- setup phase ------------------------------------------------------------

    def send_node_info(self, info: NodeInfo) -> None:
        raise NotImplementedError

    def collect_node_info(self) -> list[NodeInfo]:
        raise NotImplementedError

    def send_run_task(self, slave_rank: int, task: RunTask) -> None:
        raise NotImplementedError

    def wait_for_run_task(self) -> RunTask:
        raise NotImplementedError

    def build_contexts(self, is_active_slave: bool) -> None:
        """Collectively derive the LOCAL and GLOBAL communicators."""
        raise NotImplementedError

    def rejoin_contexts(self, is_active_slave: bool = True) -> None:
        """Re-derive LOCAL/GLOBAL *non-collectively* (respawned rank)."""
        raise NotImplementedError

    def try_collect_node_info(self, timeout: float) -> NodeInfo | None:
        """One late node-info message, if any (respawn/join detection).

        Polled unconditionally by the master loop, so the default is "no
        late arrivals" rather than NotImplementedError: comms without an
        open rendezvous simply never see one.
        """
        return None

    # -- heartbeat / control ------------------------------------------------------

    def request_status(self, slave_rank: int) -> None:
        raise NotImplementedError

    def poll_status_request(self) -> bool:
        raise NotImplementedError

    def reply_status(self, reply: StatusReply) -> None:
        raise NotImplementedError

    def drain_status_replies(self) -> list[StatusReply]:
        raise NotImplementedError

    def send_abort(self, slave_rank: int) -> None:
        raise NotImplementedError

    def poll_abort(self) -> bool:
        raise NotImplementedError

    # -- fault recovery ------------------------------------------------------------

    def send_cell_snapshot(self, snapshot: "CellSnapshot") -> None:
        raise NotImplementedError

    def drain_cell_snapshots(self) -> "list[CellSnapshot]":
        raise NotImplementedError

    def send_fault_notice(self, slave_rank: int, notice: "FaultNotice") -> None:
        raise NotImplementedError

    def poll_fault_notice(self) -> "FaultNotice | None":
        # Polled unconditionally by the slave serve loop, so the default is
        # "no notice" rather than NotImplementedError: a comm that does not
        # participate in fault recovery simply never surfaces one.
        return None

    # -- elastic membership (graceful drain) ---------------------------------------

    def send_drain_notice(self, notice) -> None:
        """Leaving slave -> master: final checkpoints for hand-off."""
        raise NotImplementedError

    def poll_drain_notice(self):
        # Defaults mirror poll_fault_notice: polled unconditionally by the
        # master loop, absent on comms without elastic membership.
        return None

    def send_drain_ack(self, slave_rank: int) -> None:
        raise NotImplementedError

    def poll_drain_ack(self) -> bool:
        return False

    # -- training-time exchange ------------------------------------------------------

    def exchange_genomes(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                         mode: str, timer: RoutineTimer = NULL_TIMER,
                         abort_event: threading.Event | None = None,
                         fault_state: "FaultState | None" = None,
                         catch_up: bool = False,
                         resync_until: int | None = None,
                         ) -> dict[int, ExchangePayload]:
        raise NotImplementedError

    # -- results ------------------------------------------------------------------------

    def send_result(self, result: SlaveResult) -> None:
        raise NotImplementedError

    def try_collect_result(self, timeout: float) -> SlaveResult | None:
        raise NotImplementedError


class MpiCommManager(CommManager):
    """The MPI implementation used by both the master and the slaves."""

    def __init__(self, world: Comm):
        self.world = world
        self.local: Comm | None = None
        self.global_: Comm | None = None
        #: latest genome payload seen per neighbor cell (async mode cache).
        self._async_cache: dict[int, ExchangePayload] = {}

    # -- identity -------------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.world.Get_rank()

    @property
    def size(self) -> int:
        return self.world.Get_size()

    # -- setup phase -------------------------------------------------------------------

    def send_node_info(self, info: NodeInfo) -> None:
        self.world.send(info, dest=0, tag=Tags.NODE_INFO)

    def collect_node_info(self) -> list[NodeInfo]:
        infos = []
        for _ in range(self.size - 1):
            infos.append(self.world.recv(source=ANY_SOURCE, tag=Tags.NODE_INFO))
        infos.sort(key=lambda i: i.rank)
        return infos

    def send_run_task(self, slave_rank: int, task: RunTask) -> None:
        self.world.send(task, dest=slave_rank, tag=Tags.RUN_TASK)

    def wait_for_run_task(self) -> RunTask:
        return self.world.recv(source=0, tag=Tags.RUN_TASK)

    def build_contexts(self, is_active_slave: bool) -> None:
        """LOCAL = active slaves only; GLOBAL = everyone (a WORLD duplicate).

        Collective over WORLD — the master participates with ``color=None``
        in the LOCAL split (MPI_UNDEFINED), receiving no LOCAL communicator.
        """
        color = 1 if is_active_slave else None
        self.local = self.world.Split(color=color, key=self.rank)
        self.global_ = self.world.Dup()

    def rejoin_contexts(self, is_active_slave: bool = True) -> None:
        """Reconstruct LOCAL/GLOBAL without re-running the collectives.

        A respawned worker joins a job whose :meth:`build_contexts` already
        ran; the context tuples that derivation produced are deterministic
        (Split seq 0 with color 1 for LOCAL, Dup = Split seq 1 color 0 for
        GLOBAL, members ordered by rank), so the reborn rank re-attaches
        with :meth:`Comm.Attach_derived` and immediately speaks both
        contexts.
        """
        slaves = list(range(1, self.size))
        everyone = list(range(self.size))
        self.local = (self.world.Attach_derived((0, 1), slaves)
                      if is_active_slave else None)
        self.global_ = self.world.Attach_derived((1, 0), everyone)

    def try_collect_node_info(self, timeout: float) -> NodeInfo | None:
        try:
            return self.world.recv(source=ANY_SOURCE, tag=Tags.NODE_INFO,
                                   timeout=timeout)
        except MpiTimeoutError:
            return None

    # -- heartbeat / control -------------------------------------------------------------

    def request_status(self, slave_rank: int) -> None:
        self.world.send(None, dest=slave_rank, tag=Tags.STATUS_REQUEST)

    def poll_status_request(self) -> bool:
        if self.world.iprobe(source=0, tag=Tags.STATUS_REQUEST):
            self.world.recv(source=0, tag=Tags.STATUS_REQUEST)
            return True
        return False

    def reply_status(self, reply: StatusReply) -> None:
        self.world.send(reply, dest=0, tag=Tags.STATUS_REPLY)

    def drain_status_replies(self) -> list[StatusReply]:
        replies = []
        while self.world.iprobe(source=ANY_SOURCE, tag=Tags.STATUS_REPLY):
            replies.append(self.world.recv(source=ANY_SOURCE, tag=Tags.STATUS_REPLY))
        return replies

    def send_abort(self, slave_rank: int) -> None:
        self.world.send(None, dest=slave_rank, tag=Tags.ABORT)

    def poll_abort(self) -> bool:
        if self.world.iprobe(source=0, tag=Tags.ABORT):
            self.world.recv(source=0, tag=Tags.ABORT)
            return True
        return False

    # -- fault recovery -------------------------------------------------------------

    def send_cell_snapshot(self, snapshot: "CellSnapshot") -> None:
        self.world.send(snapshot, dest=0, tag=Tags.CHECKPOINT)

    def drain_cell_snapshots(self) -> "list[CellSnapshot]":
        snapshots = []
        while self.world.iprobe(source=ANY_SOURCE, tag=Tags.CHECKPOINT):
            snapshots.append(self.world.recv(source=ANY_SOURCE, tag=Tags.CHECKPOINT))
        return snapshots

    def send_fault_notice(self, slave_rank: int, notice: "FaultNotice") -> None:
        self.world.send(notice, dest=slave_rank, tag=Tags.FAULT_NOTICE)

    def poll_fault_notice(self) -> "FaultNotice | None":
        if self.world.iprobe(source=0, tag=Tags.FAULT_NOTICE):
            return self.world.recv(source=0, tag=Tags.FAULT_NOTICE)
        return None

    # -- elastic membership (graceful drain) ---------------------------------------
    #
    # DRAIN shares one tag in both directions: slave -> 0 carries the
    # DrainNotice (final checkpoints), 0 -> slave carries the ack (None).
    # Direction disambiguates — iprobe filters on the source rank.

    def send_drain_notice(self, notice) -> None:
        self.world.send(notice, dest=0, tag=Tags.DRAIN)

    def poll_drain_notice(self):
        if self.world.iprobe(source=ANY_SOURCE, tag=Tags.DRAIN):
            return self.world.recv(source=ANY_SOURCE, tag=Tags.DRAIN)
        return None

    def send_drain_ack(self, slave_rank: int) -> None:
        self.world.send(None, dest=slave_rank, tag=Tags.DRAIN)

    def poll_drain_ack(self) -> bool:
        if self.world.iprobe(source=0, tag=Tags.DRAIN):
            self.world.recv(source=0, tag=Tags.DRAIN)
            return True
        return False

    # -- training-time exchange -------------------------------------------------------------

    def _local_rank_of_cell(self, grid: Grid, cell: int) -> int:
        """LOCAL ranks follow WORLD order, so slave of cell i has LOCAL rank i."""
        assert self.local is not None, "build_contexts must run before exchanging"
        return cell  # slaves are WORLD ranks 1..N in cell order; LOCAL keeps order

    def exchange_genomes(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                         mode: str, timer: RoutineTimer = NULL_TIMER,
                         abort_event: threading.Event | None = None,
                         fault_state: "FaultState | None" = None,
                         catch_up: bool = False,
                         resync_until: int | None = None,
                         ) -> dict[int, ExchangePayload]:
        """One iteration of neighbor exchange; returns cell -> payload.

        * ``neighbors`` — point-to-point with the overlapping neighborhoods
          (synchronous: blocks for all four neighbors, honoring an abort).
        * ``allgather`` — collective over LOCAL, paper-style; every slave
          receives every center and keeps its neighbors'.
        * ``async`` — send and drain whatever already arrived; missing
          neighbors fall back to their latest known genome (stale exchange).

        Recovery hooks (``neighbors`` mode only — the non-abort fault
        policies require it): ``fault_state`` satisfies receives from dead
        cells locally and reroutes sends to adopting ranks; ``catch_up``
        runs the round communication-free (an adopted cell replaying
        iterations below its rejoin point); ``resync_until`` bounds the
        receive wait for the adopted cell's first synchronized iterations,
        whose peers' original payloads died with the old rank.
        """
        if mode not in EXCHANGE_MODES:
            raise ValueError(f"unknown exchange mode {mode!r}; known: {EXCHANGE_MODES}")
        if mode == "allgather":
            return self._exchange_allgather(grid, cell_index, payload, timer)
        if mode == "async":
            return self._exchange_async(grid, cell_index, payload, timer)
        return self._exchange_neighbors(grid, cell_index, payload, timer, abort_event,
                                        fault_state, catch_up, resync_until)

    @staticmethod
    def _exchange_tag(iteration: int, dest_cell: int) -> int:
        """Tag encoding (iteration, destination cell).

        The iteration part keeps a fast neighbor's round-(k+1) message from
        matching a round-k receive; the destination part keeps a rank that
        hosts *several* cells (fault recovery: an adopter running a second
        execution thread) from stealing a co-hosted cell's message on its
        ``ANY_SOURCE`` receive.  Stays far below ``MAX_USER_TAG`` (2**30)
        for any realistic grid/iteration count.
        """
        return (int(Tags.EXCHANGE) * 1000 + iteration) * 1024 + dest_cell

    def _count_exchange(self, payload: ExchangePayload, sends: int) -> None:
        """Mirror one exchange round into the bus (enabled-path only)."""
        if sends and telemetry.enabled():
            telemetry.count("exchange.genomes_sent", sends)
            telemetry.count("exchange.bytes_sent",
                            sends * payload_nbytes(payload))

    def _exchange_neighbors(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                            timer: RoutineTimer, abort_event: threading.Event | None,
                            fault_state: "FaultState | None" = None,
                            catch_up: bool = False,
                            resync_until: int | None = None,
                            ) -> dict[int, ExchangePayload]:
        assert self.local is not None
        iteration = payload.iteration
        with timer.section("gather"), telemetry.span("exchange.gather"):
            needed = list(grid.neighbor_cells(cell_index))
            received: dict[int, ExchangePayload] = {}
            # Torus self-edges (any grid dimension of 1: on 1x1 all four
            # neighbors wrap to the center) are satisfied locally — sends
            # follow incoming_neighbors, which excludes self, so no message
            # ever arrives for them; waiting on them deadlocked 1x1 runs.
            self_edges = sum(1 for cell in needed if cell == cell_index)
            if self_edges:
                received[cell_index] = payload
            if catch_up:
                # Replaying below the rejoin point: nobody expects this
                # cell's payloads (they satisfy it from the frozen
                # checkpoint) and nobody resends what its predecessor
                # received — run the round communication-free; the caller
                # backfills missing neighbors with the own-center fallback.
                return received
            # Send my center along every *incoming* edge (cells that list me
            # as neighbor), then receive one message per outgoing edge.
            consumers = grid.incoming_neighbors(cell_index)
            sends = 0
            for consumer in consumers:
                dest = self._local_rank_of_cell(grid, consumer)
                if fault_state is not None:
                    if fault_state.skip_send(consumer, iteration):
                        continue
                    route = fault_state.send_route(consumer)
                    if route is not None:
                        dest = route
                self.local.send(payload, dest=dest,
                                tag=self._exchange_tag(iteration, consumer))
                sends += 1
            self._count_exchange(payload, sends)
            tag = self._exchange_tag(iteration, cell_index)
            outstanding = Counter(cell for cell in needed if cell != cell_index)
            deadline = (time.monotonic() + RESYNC_TIMEOUT_S
                        if resync_until is not None and iteration < resync_until
                        else None)
            while sum(outstanding.values()) > 0:
                if fault_state is not None:
                    # Re-checked every poll: a fault notice that arrives
                    # while this receive is blocked on a now-dead neighbor
                    # unblocks it here.
                    for cell in [c for c, n in outstanding.items() if n > 0]:
                        frozen = fault_state.frozen_payload(cell, iteration)
                        if frozen is not None:
                            received[cell] = frozen
                            outstanding[cell] = 0
                    if sum(outstanding.values()) == 0:
                        break
                if abort_event is not None and abort_event.is_set():
                    raise ExchangeAborted(f"cell {cell_index}: abort during exchange")
                if deadline is not None and time.monotonic() > deadline:
                    # Resync window: the payloads this slot waits for may
                    # have been sent to the rank that died — fall back to
                    # the own-center alias instead of blocking forever.
                    break
                try:
                    message: ExchangePayload = self.local.recv(
                        source=ANY_SOURCE, tag=tag, timeout=0.25
                    )
                except MpiTimeoutError:
                    continue
                if fault_state is not None:
                    # Epoch fence: a payload stamped before the epoch in
                    # which its cell last changed hands is the leaving
                    # rank's final in-flight frame — drop it, the cell's
                    # new owner re-sends under the current epoch.  Static
                    # runs never bump epochs, so every payload passes.
                    min_epoch = fault_state.min_epoch_for(message.cell_index)
                    if getattr(message, "epoch", 0) < min_epoch:
                        if telemetry.enabled():
                            telemetry.count("exchange.stale_dropped")
                        continue
                if outstanding.get(message.cell_index, 0) > 0:
                    received[message.cell_index] = message
                    outstanding[message.cell_index] -= 1
        return received

    def _exchange_allgather(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                            timer: RoutineTimer) -> dict[int, ExchangePayload]:
        assert self.local is not None
        with timer.section("gather"), telemetry.span("exchange.gather"):
            self._count_exchange(payload, 1)
            everything: list[ExchangePayload] = self.local.allgather(payload)
            wanted = set(grid.neighbor_cells(cell_index))
            return {p.cell_index: p for p in everything if p.cell_index in wanted}

    def _exchange_async(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                        timer: RoutineTimer) -> dict[int, ExchangePayload]:
        from repro.mpi import ANY_TAG  # LOCAL carries only exchange traffic

        assert self.local is not None
        with timer.section("gather"), telemetry.span("exchange.gather"):
            consumers = grid.incoming_neighbors(cell_index)
            self._count_exchange(payload, len(consumers))
            for consumer in consumers:
                self.local.send(payload, dest=self._local_rank_of_cell(grid, consumer),
                                tag=self._exchange_tag(payload.iteration, consumer))
            # Drain whatever is already here; never block.
            while self.local.iprobe(source=ANY_SOURCE, tag=ANY_TAG):
                message: ExchangePayload = self.local.recv(
                    source=ANY_SOURCE, tag=ANY_TAG
                )
                cached = self._async_cache.get(message.cell_index)
                if cached is None or message.iteration >= cached.iteration:
                    self._async_cache[message.cell_index] = message
            wanted = set(grid.neighbor_cells(cell_index))
            return {c: p for c, p in self._async_cache.items() if c in wanted}

    # -- results ------------------------------------------------------------------------------

    def send_result(self, result: SlaveResult) -> None:
        self.world.send(result, dest=0, tag=Tags.RESULT)

    def try_collect_result(self, timeout: float) -> SlaveResult | None:
        try:
            return self.world.recv(source=ANY_SOURCE, tag=Tags.RESULT, timeout=timeout)
        except MpiTimeoutError:
            return None
