"""``CommManager``: every inter-process interaction behind one interface.

The paper replaces Lipizzaner's ``node-comm`` (a client/server layer where
every slave binds a port) with a ``comm-manager`` class that "implements all
communications and synchronization in an abstract way, using underlying MPI
functions".  :class:`CommManager` is that abstract interface;
:class:`MpiCommManager` is the MPI implementation over :mod:`repro.mpi`.

Three communication contexts, exactly as in Section III-D:

* **WORLD** — job setup, run-task messages, status control, results;
* **LOCAL** — only the active slaves; carries the per-iteration genome
  exchange (the profiled ``gather`` routine) without involving the master;
* **GLOBAL** — master + all slaves; final collective operations.
"""

from __future__ import annotations

import threading

from repro.mpi import ANY_SOURCE, Comm, MpiTimeoutError
from repro.mpi.stats import payload_nbytes
from repro.parallel.grid import Grid
from repro.parallel.messages import ExchangePayload, NodeInfo, RunTask, SlaveResult, StatusReply, Tags
from repro.profiling import NULL_TIMER, RoutineTimer
from repro.telemetry import bus as telemetry

__all__ = ["CommManager", "MpiCommManager", "ExchangeAborted", "EXCHANGE_MODES"]

EXCHANGE_MODES = ("neighbors", "allgather", "async")


class ExchangeAborted(RuntimeError):
    """Raised inside the execution thread when the master aborted the job."""


class CommManager:
    """Abstract communication interface (transport-agnostic).

    The ``Grid`` never touches this class and this class never inspects
    grid internals beyond the public topology queries — the decoupling the
    paper calls out explicitly.
    """

    # -- identity ------------------------------------------------------------

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def is_master(self) -> bool:
        return self.rank == 0

    # -- setup phase ------------------------------------------------------------

    def send_node_info(self, info: NodeInfo) -> None:
        raise NotImplementedError

    def collect_node_info(self) -> list[NodeInfo]:
        raise NotImplementedError

    def send_run_task(self, slave_rank: int, task: RunTask) -> None:
        raise NotImplementedError

    def wait_for_run_task(self) -> RunTask:
        raise NotImplementedError

    def build_contexts(self, is_active_slave: bool) -> None:
        """Collectively derive the LOCAL and GLOBAL communicators."""
        raise NotImplementedError

    # -- heartbeat / control ------------------------------------------------------

    def request_status(self, slave_rank: int) -> None:
        raise NotImplementedError

    def poll_status_request(self) -> bool:
        raise NotImplementedError

    def reply_status(self, reply: StatusReply) -> None:
        raise NotImplementedError

    def drain_status_replies(self) -> list[StatusReply]:
        raise NotImplementedError

    def send_abort(self, slave_rank: int) -> None:
        raise NotImplementedError

    def poll_abort(self) -> bool:
        raise NotImplementedError

    # -- training-time exchange ------------------------------------------------------

    def exchange_genomes(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                         mode: str, timer: RoutineTimer = NULL_TIMER,
                         abort_event: threading.Event | None = None,
                         ) -> dict[int, ExchangePayload]:
        raise NotImplementedError

    # -- results ------------------------------------------------------------------------

    def send_result(self, result: SlaveResult) -> None:
        raise NotImplementedError

    def try_collect_result(self, timeout: float) -> SlaveResult | None:
        raise NotImplementedError


class MpiCommManager(CommManager):
    """The MPI implementation used by both the master and the slaves."""

    def __init__(self, world: Comm):
        self.world = world
        self.local: Comm | None = None
        self.global_: Comm | None = None
        #: latest genome payload seen per neighbor cell (async mode cache).
        self._async_cache: dict[int, ExchangePayload] = {}

    # -- identity -------------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.world.Get_rank()

    @property
    def size(self) -> int:
        return self.world.Get_size()

    # -- setup phase -------------------------------------------------------------------

    def send_node_info(self, info: NodeInfo) -> None:
        self.world.send(info, dest=0, tag=Tags.NODE_INFO)

    def collect_node_info(self) -> list[NodeInfo]:
        infos = []
        for _ in range(self.size - 1):
            infos.append(self.world.recv(source=ANY_SOURCE, tag=Tags.NODE_INFO))
        infos.sort(key=lambda i: i.rank)
        return infos

    def send_run_task(self, slave_rank: int, task: RunTask) -> None:
        self.world.send(task, dest=slave_rank, tag=Tags.RUN_TASK)

    def wait_for_run_task(self) -> RunTask:
        return self.world.recv(source=0, tag=Tags.RUN_TASK)

    def build_contexts(self, is_active_slave: bool) -> None:
        """LOCAL = active slaves only; GLOBAL = everyone (a WORLD duplicate).

        Collective over WORLD — the master participates with ``color=None``
        in the LOCAL split (MPI_UNDEFINED), receiving no LOCAL communicator.
        """
        color = 1 if is_active_slave else None
        self.local = self.world.Split(color=color, key=self.rank)
        self.global_ = self.world.Dup()

    # -- heartbeat / control -------------------------------------------------------------

    def request_status(self, slave_rank: int) -> None:
        self.world.send(None, dest=slave_rank, tag=Tags.STATUS_REQUEST)

    def poll_status_request(self) -> bool:
        if self.world.iprobe(source=0, tag=Tags.STATUS_REQUEST):
            self.world.recv(source=0, tag=Tags.STATUS_REQUEST)
            return True
        return False

    def reply_status(self, reply: StatusReply) -> None:
        self.world.send(reply, dest=0, tag=Tags.STATUS_REPLY)

    def drain_status_replies(self) -> list[StatusReply]:
        replies = []
        while self.world.iprobe(source=ANY_SOURCE, tag=Tags.STATUS_REPLY):
            replies.append(self.world.recv(source=ANY_SOURCE, tag=Tags.STATUS_REPLY))
        return replies

    def send_abort(self, slave_rank: int) -> None:
        self.world.send(None, dest=slave_rank, tag=Tags.ABORT)

    def poll_abort(self) -> bool:
        if self.world.iprobe(source=0, tag=Tags.ABORT):
            self.world.recv(source=0, tag=Tags.ABORT)
            return True
        return False

    # -- training-time exchange -------------------------------------------------------------

    def _local_rank_of_cell(self, grid: Grid, cell: int) -> int:
        """LOCAL ranks follow WORLD order, so slave of cell i has LOCAL rank i."""
        assert self.local is not None, "build_contexts must run before exchanging"
        return cell  # slaves are WORLD ranks 1..N in cell order; LOCAL keeps order

    def exchange_genomes(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                         mode: str, timer: RoutineTimer = NULL_TIMER,
                         abort_event: threading.Event | None = None,
                         ) -> dict[int, ExchangePayload]:
        """One iteration of neighbor exchange; returns cell -> payload.

        * ``neighbors`` — point-to-point with the overlapping neighborhoods
          (synchronous: blocks for all four neighbors, honoring an abort).
        * ``allgather`` — collective over LOCAL, paper-style; every slave
          receives every center and keeps its neighbors'.
        * ``async`` — send and drain whatever already arrived; missing
          neighbors fall back to their latest known genome (stale exchange).
        """
        if mode not in EXCHANGE_MODES:
            raise ValueError(f"unknown exchange mode {mode!r}; known: {EXCHANGE_MODES}")
        if mode == "allgather":
            return self._exchange_allgather(grid, cell_index, payload, timer)
        if mode == "async":
            return self._exchange_async(grid, cell_index, payload, timer)
        return self._exchange_neighbors(grid, cell_index, payload, timer, abort_event)

    @staticmethod
    def _exchange_tag(iteration: int) -> int:
        """Per-iteration tag: a fast neighbor's round-(k+1) message can never
        match a round-k receive, which would otherwise skew the message
        accounting when cells drift by one iteration."""
        return int(Tags.EXCHANGE) * 1000 + iteration

    def _count_exchange(self, payload: ExchangePayload, sends: int) -> None:
        """Mirror one exchange round into the bus (enabled-path only)."""
        if sends and telemetry.enabled():
            telemetry.count("exchange.genomes_sent", sends)
            telemetry.count("exchange.bytes_sent",
                            sends * payload_nbytes(payload))

    def _exchange_neighbors(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                            timer: RoutineTimer, abort_event: threading.Event | None,
                            ) -> dict[int, ExchangePayload]:
        assert self.local is not None
        tag = self._exchange_tag(payload.iteration)
        with timer.section("gather"), telemetry.span("exchange.gather"):
            # Send my center along every *incoming* edge (cells that list me
            # as neighbor), then receive one message per outgoing edge.
            consumers = grid.incoming_neighbors(cell_index)
            self._count_exchange(payload, len(consumers))
            for consumer in consumers:
                self.local.send(payload, dest=self._local_rank_of_cell(grid, consumer),
                                tag=tag)
            needed = list(grid.neighbor_cells(cell_index))
            received: dict[int, ExchangePayload] = {}
            # Torus self-edges (any grid dimension of 1: on 1x1 all four
            # neighbors wrap to the center) are satisfied locally — sends
            # follow incoming_neighbors, which excludes self, so no message
            # ever arrives for them; waiting on them deadlocked 1x1 runs.
            self_edges = sum(1 for cell in needed if cell == cell_index)
            if self_edges:
                received[cell_index] = payload
            pending = len(needed) - self_edges  # 2x2 wraparound counts twice
            while pending > 0:
                if abort_event is not None and abort_event.is_set():
                    raise ExchangeAborted(f"cell {cell_index}: abort during exchange")
                try:
                    message: ExchangePayload = self.local.recv(
                        source=ANY_SOURCE, tag=tag, timeout=0.25
                    )
                except MpiTimeoutError:
                    continue
                received[message.cell_index] = message
                pending -= 1
        return received

    def _exchange_allgather(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                            timer: RoutineTimer) -> dict[int, ExchangePayload]:
        assert self.local is not None
        with timer.section("gather"), telemetry.span("exchange.gather"):
            self._count_exchange(payload, 1)
            everything: list[ExchangePayload] = self.local.allgather(payload)
            wanted = set(grid.neighbor_cells(cell_index))
            return {p.cell_index: p for p in everything if p.cell_index in wanted}

    def _exchange_async(self, grid: Grid, cell_index: int, payload: ExchangePayload,
                        timer: RoutineTimer) -> dict[int, ExchangePayload]:
        from repro.mpi import ANY_TAG  # LOCAL carries only exchange traffic

        assert self.local is not None
        with timer.section("gather"), telemetry.span("exchange.gather"):
            consumers = grid.incoming_neighbors(cell_index)
            self._count_exchange(payload, len(consumers))
            for consumer in consumers:
                self.local.send(payload, dest=self._local_rank_of_cell(grid, consumer),
                                tag=self._exchange_tag(payload.iteration))
            # Drain whatever is already here; never block.
            while self.local.iprobe(source=ANY_SOURCE, tag=ANY_TAG):
                message: ExchangePayload = self.local.recv(
                    source=ANY_SOURCE, tag=ANY_TAG
                )
                cached = self._async_cache.get(message.cell_index)
                if cached is None or message.iteration >= cached.iteration:
                    self._async_cache[message.cell_index] = message
            wanted = set(grid.neighbor_cells(cell_index))
            return {c: p for c, p in self._async_cache.items() if c in wanted}

    # -- results ------------------------------------------------------------------------------

    def send_result(self, result: SlaveResult) -> None:
        self.world.send(result, dest=0, tag=Tags.RESULT)

    def try_collect_result(self, timeout: float) -> SlaveResult | None:
        try:
            return self.world.recv(source=ANY_SOURCE, tag=Tags.RESULT, timeout=timeout)
        except MpiTimeoutError:
            return None
