"""Fault recovery for distributed training: policies, migration, rejoin.

The paper's heartbeat thread (Section III-B, Fig. 3) only *detects* slave
failure; the master then aborts the survivors.  This module is the layer
that turns detection into recovery.  Three policies:

* ``abort`` — the paper-faithful default: survivors are aborted gracefully
  and the run reports its dead ranks.
* ``degrade`` — the dead rank's cells are frozen at their latest
  checkpoint: neighbors keep exchanging against the frozen center genomes
  and the run completes with ``degraded_ranks`` populated.
* ``recover`` — the dead rank's cells *migrate*: either a freshly
  respawned replacement worker (socket backend, up to ``--max-restarts``)
  resumes them from checkpoint, or a surviving slave adopts them, runs
  them in a second execution thread, and rejoins the synchronous exchange.

The rejoin protocol (why it cannot deadlock)
--------------------------------------------

Only *direct* neighbors of a dead cell ``c`` ever send to it
(:meth:`Grid.incoming_neighbors`), and the synchronous neighbors exchange
sends before it receives.  When ``c`` stops answering, its direct
neighbors block inside their exchange at most one iteration past ``c``'s
last send — so when the master's :class:`FaultNotice` reaches them they
are still *before* the rejoin iteration ``R``.  From the notice on:

* exchange receives *from* ``c`` at iterations ``< R`` are satisfied
  locally from the frozen checkpoint genomes (no message needed);
* sends *to* ``c`` at iterations ``< R`` are skipped — nobody listens;
* from iteration ``R`` the adopter speaks for ``c``: it sends ``c``'s
  center to ``c``'s consumers and receives from ``c``'s neighbors, with
  the routing override mapping cell ``c`` to the adopting rank.

The adopted cell catches up from its checkpoint to ``R`` without
communicating (neighbor slots fall back to its own center, exactly the
async-mode fallback), then exchanges synchronously.  ``R`` is chosen past
every live cell's known iteration plus the torus diameter; because
payloads sent to the dead rank before the notice are lost, the adopter's
first synchronized iterations additionally carry a bounded resync timeout
(:data:`RESYNC_TIMEOUT_S`) instead of blocking forever on a payload that
can no longer arrive.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.coevolution.checkpoint import CellSnapshot
from repro.parallel.messages import ExchangePayload

__all__ = [
    "FAULT_POLICIES",
    "validate_fault_policy",
    "FrozenCell",
    "FaultNotice",
    "ResumeDirective",
    "FaultState",
    "choose_adopter",
    "plan_rebalance",
    "rejoin_iteration",
    "RESYNC_WINDOW",
    "RESYNC_TIMEOUT_S",
]

FAULT_POLICIES = ("abort", "degrade", "recover")

#: Iterations past the rejoin point during which an adopted cell's exchange
#: receives time out to the own-center fallback instead of blocking forever —
#: covers payloads its predecessor received-but-lost around the death window.
RESYNC_WINDOW = 32

#: Per-iteration budget of that bounded wait (seconds).
RESYNC_TIMEOUT_S = 5.0


def validate_fault_policy(policy: str) -> str:
    if policy not in FAULT_POLICIES:
        raise ValueError(
            f"unknown fault policy {policy!r}; expected one of {FAULT_POLICIES}")
    return policy


@dataclass(frozen=True)
class FrozenCell:
    """One dead cell as the survivors must treat it from now on.

    ``adopter_rank`` is the WORLD rank now speaking for the cell (``None``
    under ``degrade`` — frozen for the rest of the run).  Exchange receives
    from this cell at iterations ``< rejoin_iteration`` are satisfied from
    the frozen genomes; sends to it before then are skipped.
    """

    cell_index: int
    iteration: int
    generator_genome: object
    discriminator_genome: object
    mixture_weights: object
    adopter_rank: int | None
    rejoin_iteration: int
    epoch: int = 0
    """Membership epoch at which this hand-off happened.  A later notice
    for the same cell with a higher epoch *replaces* this entry (a frozen
    cell reclaimed by a joiner, an adopted cell re-adopted after a second
    death); exchange payloads stamped with an older epoch are fenced out."""

    def snapshot(self) -> CellSnapshot:
        return CellSnapshot(
            cell_index=self.cell_index,
            iteration=self.iteration,
            generator_genome=self.generator_genome,
            discriminator_genome=self.discriminator_genome,
            mixture_weights=self.mixture_weights,
        )


@dataclass(frozen=True)
class FaultNotice:
    """Master -> surviving slaves: ranks died, here is the new world order."""

    policy: str
    dead_ranks: tuple[int, ...]
    cells: tuple[FrozenCell, ...]


@dataclass(frozen=True)
class ResumeDirective:
    """Master -> respawned worker: resume your cell from this state.

    ``notices`` replays every fault the run has seen so far, so the reborn
    rank's exchange treats earlier dead cells exactly like the survivors do.
    ``snapshot`` is ``None`` for a standby joiner — a rank admitted with no
    cell to resume, parked until a re-balance assigns it one.
    """

    snapshot: CellSnapshot | None
    rejoin_iteration: int
    notices: tuple[FaultNotice, ...] = ()


class FaultState:
    """A slave's thread-safe view of every dead cell in the run.

    The main (communication) thread applies :class:`FaultNotice` messages;
    the execution threads consult it on every exchange round — including
    mid-wait, so a notice that arrives while a receive is blocked on a dead
    neighbor unblocks it on the next poll.
    """

    def __init__(self, first_slave_rank: int = 1):
        self._lock = threading.Lock()
        self._frozen: dict[int, FrozenCell] = {}
        self._first_slave_rank = first_slave_rank

    def apply(self, notice: FaultNotice) -> list[FrozenCell]:
        """Record a notice; returns only the cells not seen before.

        A cell already known is replaced (and returned as fresh) when the
        notice carries a strictly newer epoch — the elastic case of a
        frozen cell reclaimed by a joiner, or an adopted cell changing
        hands again.  Same-epoch duplicates stay idempotent.
        """
        fresh: list[FrozenCell] = []
        with self._lock:
            for cell in notice.cells:
                existing = self._frozen.get(cell.cell_index)
                if existing is None or cell.epoch > existing.epoch:
                    self._frozen[cell.cell_index] = cell
                    fresh.append(cell)
        return fresh

    def current_epoch(self) -> int:
        """Highest membership epoch this slave has seen (0 = static run)."""
        with self._lock:
            if not self._frozen:
                return 0
            return max(cell.epoch for cell in self._frozen.values())

    def min_epoch_for(self, cell_index: int) -> int:
        """Epoch fence for receives attributed to ``cell_index``.

        Payloads stamped with an older epoch predate the cell's last
        hand-off — they are the leaving rank's final in-flight frames and
        must be dropped, not delivered to the new owner's neighbors.
        """
        with self._lock:
            frozen = self._frozen.get(cell_index)
        return 0 if frozen is None else frozen.epoch

    def frozen_cells(self) -> list[FrozenCell]:
        with self._lock:
            return list(self._frozen.values())

    def frozen_payload(self, cell_index: int, iteration: int) -> ExchangePayload | None:
        """The locally-satisfiable payload for a dead neighbor, if any."""
        with self._lock:
            frozen = self._frozen.get(cell_index)
        if frozen is None or iteration >= frozen.rejoin_iteration:
            return None
        return ExchangePayload(
            cell_index=cell_index,
            iteration=iteration,
            generator_genome=frozen.generator_genome,
            discriminator_genome=frozen.discriminator_genome,
            epoch=frozen.epoch,
        )

    def skip_send(self, cell_index: int, iteration: int) -> bool:
        """True when nobody will ever receive a send to this cell now."""
        with self._lock:
            frozen = self._frozen.get(cell_index)
        if frozen is None:
            return False
        return frozen.adopter_rank is None or iteration < frozen.rejoin_iteration

    def send_route(self, cell_index: int) -> int | None:
        """LOCAL-rank override for sends to an adopted cell (else ``None``)."""
        with self._lock:
            frozen = self._frozen.get(cell_index)
        if frozen is None or frozen.adopter_rank is None:
            return None
        return frozen.adopter_rank - self._first_slave_rank


def choose_adopter(outstanding: Mapping[int, Iterable[int]],
                   excluded: Iterable[int] = ()) -> int | None:
    """The surviving rank that should adopt the next orphaned cell.

    Candidates are ranks still working (non-empty outstanding cell set) and
    not themselves dead; least-loaded wins, lowest rank breaks ties.
    Returns ``None`` when nobody can adopt (all survivors already finished).
    """
    banned = set(excluded)
    candidates = []
    for rank, cells in outstanding.items():
        if rank in banned:
            continue
        load = len(list(cells))
        if load:
            candidates.append((load, rank))
    if not candidates:
        return None
    return min(candidates)[1]


def plan_rebalance(orphans: Iterable[int],
                   candidates: Mapping[int, Iterable[int]],
                   grid=None,
                   excluded: Iterable[int] = ()) -> dict[int, int | None]:
    """Deterministically assign orphaned cells to surviving/standby ranks.

    ``candidates`` maps each eligible rank to the cells it currently hosts
    (standby joiners appear with an empty set).  For every orphan — visited
    in sorted order, so the plan is a pure function of its inputs — the
    best candidate minimizes ``(-locality, load, rank)``:

    * *locality* counts the candidate's hosted cells adjacent to the orphan
      on the torus (both exchange directions), so a migrated cell lands
      next to the neighbors it already talks to where possible;
    * *load* is the candidate's cell count including earlier assignments
      from this same plan, so one re-balance spreads a storm of orphans
      instead of piling them on a single rank;
    * lowest rank breaks remaining ties.

    With ``grid=None`` (or a grid too small for locality to differentiate,
    e.g. 2x2 where every cell neighbors every other) the scoring degrades
    to exactly :func:`choose_adopter`'s least-loaded-lowest-rank rule.
    Orphans nobody can take map to ``None``.
    """
    banned = set(excluded)
    loads: dict[int, int] = {}
    hosted: dict[int, set[int]] = {}
    for rank, cells in candidates.items():
        if rank in banned:
            continue
        cell_set = set(cells)
        hosted[rank] = cell_set
        loads[rank] = len(cell_set)

    plan: dict[int, int | None] = {}
    for orphan in sorted(set(orphans)):
        neighborhood: set[int] = set()
        if grid is not None:
            neighborhood.update(grid.neighbor_cells(orphan))
            neighborhood.update(grid.incoming_neighbors(orphan))
            neighborhood.discard(orphan)
        best = None
        for rank in sorted(hosted):
            # choose_adopter compatibility: an idle survivor (load 0 that
            # was never a standby joiner) is still eligible here — the
            # caller controls eligibility via the candidates mapping.
            locality = len(hosted[rank] & neighborhood)
            key = (-locality, loads[rank], rank)
            if best is None or key < best[0]:
                best = (key, rank)
        if best is None:
            plan[orphan] = None
            continue
        rank = best[1]
        plan[orphan] = rank
        hosted[rank].add(orphan)
        loads[rank] += 1
    return plan


def rejoin_iteration(known_iterations: Iterable[int], grid_diameter: int,
                     total_iterations: int) -> int:
    """First iteration at which a recovered cell exchanges synchronously.

    Past every iteration any cell is known to have reached, plus the torus
    diameter (synchronous exchange bounds inter-cell drift by graph
    distance) and a safety margin for heartbeat staleness.  Clamped to the
    run length: a rejoin at ``total_iterations`` means the recovered cell
    trains to completion without re-entering the synchronous exchange.
    """
    horizon = max(list(known_iterations) or [0])
    return min(total_iterations, horizon + grid_diameter + 8)
