"""The execution-level ``Grid`` class (the paper's replacement for
Lipizzaner's ``neighbourhood``).

Each slave holds a ``Grid`` describing the whole training grid, the mapping
between cells and MPI ranks, and — the feature the paper highlights — a
*dynamically modifiable* neighborhood structure: ``rewire`` changes a cell's
neighbor list at run time, "allow[ing] exploring different patterns for
training and learning".

``Grid`` deliberately does **not** depend on :class:`~repro.parallel.comm_manager.CommManager`
("class grid does not depend on comm-manager.  The implementation is
decoupled, so different modules for communication can be applied"): it only
answers topology questions; the comm-manager moves the bytes.
"""

from __future__ import annotations

from typing import Any

from repro.coevolution.grid import ToroidalGrid

__all__ = ["Grid"]


class Grid:
    """Topology view shared by the master and every slave."""

    def __init__(self, rows: int, cols: int, first_slave_rank: int = 1,
                 overrides: dict[int, list[int]] | None = None):
        self.topology = ToroidalGrid(rows, cols)
        if first_slave_rank < 0:
            raise ValueError("first_slave_rank must be >= 0")
        self.first_slave_rank = first_slave_rank
        #: Dynamic neighborhood overrides: cell index -> neighbor cell list.
        self._overrides: dict[int, list[int]] = {}
        for cell, neighbors in (overrides or {}).items():
            self.rewire(cell, neighbors)

    # -- cell/rank mapping --------------------------------------------------------

    @property
    def rows(self) -> int:
        return self.topology.rows

    @property
    def cols(self) -> int:
        return self.topology.cols

    @property
    def cell_count(self) -> int:
        return self.topology.cell_count

    def rank_of_cell(self, cell_index: int) -> int:
        if not 0 <= cell_index < self.cell_count:
            raise ValueError(f"cell index {cell_index} outside grid")
        return cell_index + self.first_slave_rank

    def cell_of_rank(self, rank: int) -> int:
        cell = rank - self.first_slave_rank
        if not 0 <= cell < self.cell_count:
            raise ValueError(f"rank {rank} maps to no cell")
        return cell

    def slave_ranks(self) -> list[int]:
        return [self.rank_of_cell(c) for c in range(self.cell_count)]

    # -- neighborhoods --------------------------------------------------------------

    def neighbor_cells(self, cell_index: int) -> list[int]:
        """Non-center neighbors of a cell (W, N, E, S unless rewired)."""
        override = self._overrides.get(cell_index)
        if override is not None:
            return list(override)
        return self.topology.neighbors_of(cell_index)

    def neighbor_ranks(self, cell_index: int) -> list[int]:
        return [self.rank_of_cell(c) for c in self.neighbor_cells(cell_index)]

    def neighborhood_size(self, cell_index: int) -> int:
        """Sub-population size s for a cell (center + neighbors)."""
        return 1 + len(self.neighbor_cells(cell_index))

    # -- dynamic modification (the new capability) ------------------------------------

    def rewire(self, cell_index: int, neighbors: list[int]) -> None:
        """Replace one cell's neighbor list at run time.

        Validates indices but deliberately allows asymmetric structures —
        the exchange layer sends along *incoming* edges computed via
        :meth:`incoming_neighbors`, so any digraph is executable.
        """
        if not 0 <= cell_index < self.cell_count:
            raise ValueError(f"cell index {cell_index} outside grid")
        checked = []
        for n in neighbors:
            if not 0 <= n < self.cell_count:
                raise ValueError(f"neighbor index {n} outside grid")
            if n == cell_index:
                raise ValueError("a cell cannot neighbor itself (it is already the center)")
            checked.append(int(n))
        self._overrides[cell_index] = checked

    def reset_neighborhoods(self) -> None:
        """Drop all overrides, returning to the paper's Moore-5 structure."""
        self._overrides.clear()

    def incoming_neighbors(self, cell_index: int) -> list[int]:
        """Cells that list ``cell_index`` as a neighbor (multiset).

        With the default symmetric structure this equals
        ``neighbor_cells`` — the overlap reciprocity of the torus; with
        rewired (asymmetric) structures they differ, and the exchange layer
        must send to exactly these cells.
        """
        incoming: list[int] = []
        for other in range(self.cell_count):
            if other == cell_index:
                continue
            incoming.extend(other for n in self.neighbor_cells(other) if n == cell_index)
        return incoming

    # -- (de)serialization (sent inside RunTask) ----------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "first_slave_rank": self.first_slave_rank,
            "overrides": {cell: list(ns) for cell, ns in self._overrides.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Grid":
        return cls(
            rows=payload["rows"],
            cols=payload["cols"],
            first_slave_rank=payload["first_slave_rank"],
            overrides={int(k): list(v) for k, v in payload["overrides"].items()},
        )
