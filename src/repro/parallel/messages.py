"""Message types and tags of the master-slave protocol.

All payloads are plain dataclasses of picklable fields so they cross the
process transport unchanged.  Tags partition WORLD traffic by purpose; the
genome exchange between slaves runs on the separate LOCAL communicator and
therefore reuses a single tag without interference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.coevolution.cell import CellReport
from repro.coevolution.genome import Genome
from repro.profiling import TimerSnapshot

__all__ = ["Tags", "NodeInfo", "RunTask", "StatusReply", "SlaveResult", "ExchangePayload"]


class Tags(enum.IntEnum):
    """WORLD-communicator tags (LOCAL uses only EXCHANGE)."""

    NODE_INFO = 1
    RUN_TASK = 2
    STATUS_REQUEST = 3
    STATUS_REPLY = 4
    RESULT = 5
    ABORT = 6
    EXCHANGE = 7
    CHECKPOINT = 8
    FAULT_NOTICE = 9
    DRAIN = 10


@dataclass(frozen=True)
class NodeInfo:
    """First message of every slave: where it runs (paper Fig. 3,
    "Send node name to master")."""

    rank: int
    node_name: str
    pid: int


@dataclass(frozen=True)
class RunTask:
    """Master -> slave: the workload assignment starting execution.

    Carries the full experiment configuration (serialized, so one broadcast
    parameterizes every slave identically — Section III-B), the slave's cell
    index, its grid view, and execution options.
    """

    config_json: str
    cell_index: int
    grid_payload: dict[str, Any]
    assigned_node: str
    exchange_mode: str = "neighbors"
    profile: bool = False
    trace: bool = False
    telemetry_level: str | None = None
    """Telemetry level the slave must adopt (``off``/``basic``/``trace``).
    Shipped in-band because remote socket workers do not inherit the
    master's ``REPRO_TELEMETRY`` environment; ``None`` leaves the worker's
    own setting untouched."""
    fault_at_iteration: int | None = None
    """Raise inside the execution thread at this iteration (fault-injection tests)."""
    fault_kill: bool = False
    """Harden the injected fault to ``os._exit`` — a real process death the
    transport must detect externally (process/socket backends only)."""
    fault_policy: str = "abort"
    """What the master does when a rank dies (``abort``/``degrade``/
    ``recover``); slaves need it to know whether fault notices may arrive."""
    snapshot_every: int = 0
    """Ship a :class:`~repro.coevolution.checkpoint.CellSnapshot` to the
    master every N completed iterations (0 = never; the default keeps the
    no-fault message flow byte-identical to the pre-recovery protocol)."""
    resume: Any = None
    """A :class:`~repro.parallel.recovery.ResumeDirective` when this task
    restarts a respawned worker from checkpointed state; ``None`` for the
    normal from-scratch start."""
    standby: bool = False
    """True when this task parks an elastically-joined rank with no cell of
    its own yet: the slave replays the resume directive's fault notices,
    joins the communicators, and serves the master loop — ready to adopt a
    cell when a later drain or death re-balances onto it."""


@dataclass(frozen=True)
class StatusReply:
    """Slave -> master heartbeat answer: current state of the process."""

    rank: int
    state: str
    iteration: int
    timestamp: float


@dataclass
class SlaveResult:
    """Slave -> master at the end of training (the gathered local results)."""

    rank: int
    cell_index: int
    generator_genome: Genome
    discriminator_genome: Genome
    mixture_weights: np.ndarray
    reports: list[CellReport] = field(default_factory=list)
    timer: TimerSnapshot | None = None
    trace_events: list[Any] = field(default_factory=list)
    telemetry: Any = None
    """This rank's :class:`repro.telemetry.bus.TelemetrySnapshot` (or
    ``None`` when telemetry is off) — the in-band fallback for workers
    whose transport-level outcome does not reach the master process."""
    aborted: bool = False
    recovered: bool = False
    """True when this result was produced by fault recovery — an adopted
    cell on a surviving rank or a respawned worker resuming from its
    checkpoint — rather than by the cell's original uninterrupted run."""


@dataclass(frozen=True)
class ExchangePayload:
    """Slave <-> slave (LOCAL): one cell's center genomes for one iteration.

    ``epoch`` is the membership epoch current when the payload was built
    (lint rule R10: payload-bearing wire kinds carry an epoch tag).
    Receivers drop payloads older than the epoch in which the sending cell
    last changed hands — the fence that keeps a drained rank's in-flight
    frames from corrupting its adopter's generation.  Static-membership
    runs never bump the epoch, so it stays 0 end to end.
    """

    cell_index: int
    iteration: int
    generator_genome: Genome
    discriminator_genome: Genome
    epoch: int = 0
