"""The slave process (paper Section III-B, Figs. 2 and 3).

Two threads, exactly as the paper describes:

* the **main thread** is the communication interface to the master — it
  answers status (heartbeat) requests with the slave's current state and
  watches for an abort order;
* the **execution thread** performs the GAN training: per iteration it
  exchanges center genomes with its neighbors through the comm-manager
  (the profiled ``gather``) and runs the cell step.

Lifecycle (Fig. 2): the slave starts ``inactive``, becomes ``processing``
when the *run task* message arrives, and ``finished`` after the last
iteration, at which point it ships its local results to the master.

The cell step itself runs on the fused train-step kernels of
:mod:`repro.nn.kernels` (bit-identical to the autograd tape, automatic
fallback; kill switch ``REPRO_NO_FUSED_KERNELS=1``), so the slave's
``train`` profile row measures the same kernels as the sequential
baseline — the speedup columns of Table IV stay apples to apples.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.config import ExperimentConfig
from repro.coevolution.cell import Cell
from repro.coevolution.checkpoint import CellSnapshot
from repro.coevolution.genome import Genome
from repro.data.dataset import ArrayDataset
from repro.parallel import elastic
from repro.parallel.comm_manager import CommManager, ExchangeAborted
from repro.parallel.grid import Grid
from repro.parallel.messages import ExchangePayload, NodeInfo, RunTask, SlaveResult, StatusReply
from repro.parallel.recovery import RESYNC_WINDOW, FaultState, FrozenCell
from repro.parallel.states import SlaveStateMachine
from repro.parallel.tracing import EventTrace
from repro.profiling import NULL_TIMER, RoutineTimer
from repro.telemetry import bus as telemetry

__all__ = ["SlaveProcess", "InjectedFault", "DrainRequested"]

#: How long a draining slave waits for the master's ack before exiting
#: anyway — the master may itself be tearing down.
DRAIN_ACK_TIMEOUT_S = 30.0


class InjectedFault(RuntimeError):
    """Deliberate crash requested by a fault-injection run task."""


class DrainRequested(RuntimeError):
    """Raised inside an execution thread at an iteration boundary when the
    rank has been asked to leave gracefully.  Not an error: the main thread
    turns it into a :class:`~repro.parallel.elastic.DrainNotice` hand-off."""


class SlaveProcess:
    """One slave rank; drive with :meth:`run`."""

    def __init__(self, comm: CommManager, dataset: ArrayDataset,
                 poll_interval_s: float = 0.005):
        self.comm = comm
        self.dataset = dataset
        self.poll_interval_s = poll_interval_s
        self.machine = SlaveStateMachine()
        self.abort_event = threading.Event()
        self.trace = EventTrace(actor=f"slave-{comm.rank}", enabled=False)
        self._iteration = 0
        self._iteration_lock = threading.Lock()
        self._execution_error: BaseException | None = None
        self.fault_state = FaultState()
        self._adopted_threads: list[threading.Thread] = []
        self._task: RunTask | None = None
        self._config: ExperimentConfig | None = None
        self._grid: Grid | None = None
        # Elastic drain bookkeeping: every hosted cell (own + adopted)
        # registers here so a graceful departure can checkpoint whatever is
        # still unfinished and hand it off through a DrainNotice.
        self._drain = threading.Event()
        self._cells: dict[int, Cell] = {}
        self._cell_iterations: dict[int, int] = {}
        self._completed_cells: set[int] = set()

    # -- public entry point -------------------------------------------------------

    def run(self) -> SlaveResult | None:
        """Full slave lifecycle; returns the result it also sent the master.

        Returns ``None`` on the elastic exits — a drained rank (its cells
        left through a :class:`~repro.parallel.elastic.DrainNotice`) and a
        standby joiner released by the master's end-of-run abort."""
        comm = self.comm
        # 1. Introduce ourselves (Fig. 3: "Send node name to master").
        comm.send_node_info(NodeInfo(comm.rank, socket.gethostname(), os.getpid()))
        # 2. Wait for the workload (state: inactive).
        task = comm.wait_for_run_task()
        self.trace.enabled = task.trace
        if task.telemetry_level is not None:
            # In-band level propagation: remote socket workers never saw
            # the master's REPRO_TELEMETRY environment.
            telemetry.set_level(task.telemetry_level)
        self.trace.record("run task received", f"cell {task.cell_index}")
        self.machine.start_processing()
        if task.standby:
            # An elastically-joined rank with no cell of its own: park,
            # answer heartbeats, stay ready to adopt.
            return self._standby_main(task)
        # 3. Join the LOCAL/GLOBAL communication contexts.  A respawned
        # worker re-attaches non-collectively — its peers built theirs
        # before it was born and will not re-enter the collective.
        if task.resume is not None:
            comm.rejoin_contexts(is_active_slave=True)
            for notice in task.resume.notices:
                self.fault_state.apply(notice)
        else:
            comm.build_contexts(is_active_slave=True)
        # 4. Launch the execution thread (Fig. 3: "Create execution thread").
        config = ExperimentConfig.from_json(task.config_json)
        grid = Grid.from_payload(task.grid_payload)
        self._task, self._config, self._grid = task, config, grid
        timer = RoutineTimer() if task.profile else NULL_TIMER
        result_box: dict[str, SlaveResult] = {}
        execution = threading.Thread(
            target=self._execution_main,
            args=(task, config, grid, timer, result_box),
            name=f"slave-{comm.rank}-exec",
            daemon=True,
        )
        execution.start()
        # 5. Main thread: the master's communication interface.  Keeps
        # serving while *any* hosted cell still trains — the slave may have
        # adopted a dead rank's cell into a second execution thread.
        result: SlaveResult | None = None
        own_shipped = False
        while True:
            self._serve_master_once()
            if not execution.is_alive() and not own_shipped:
                execution.join()
                if self._execution_error is not None and not isinstance(
                        self._execution_error, (ExchangeAborted, DrainRequested)):
                    raise self._execution_error
                if isinstance(self._execution_error, DrainRequested):
                    # Planned departure: hand unfinished cells to the
                    # master instead of shipping a result.
                    self._drain_and_exit()
                    return None
                # Ship the own-cell result as soon as it exists — the
                # master should not wait for adopted cells to see it.
                result = result_box["result"]
                self.trace.record("send results to master")
                result.trace_events = list(self.trace.events)  # include the send event
                comm.send_result(result)
                own_shipped = True
            if own_shipped and not any(t.is_alive() for t in self._adopted_threads):
                break
            time.sleep(self.poll_interval_s)
        if self._drain.is_set():
            # Drain arrived after the own cell shipped: hand off whatever
            # adopted cells stopped unfinished (possibly none).
            self._drain_and_exit()
            return result
        for thread in self._adopted_threads:
            thread.join()
        # 6. Finished: every hosted cell is done (Fig. 3: "Send results to
        # master" — adopted cells shipped theirs from their own threads).
        self.machine.finish()
        # Answer any still-in-flight status request so the heartbeat sees a
        # clean FINISHED before this rank exits.
        self._serve_master_once()
        return result

    # -- main-thread duties -----------------------------------------------------------

    def _serve_master_once(self) -> None:
        if self.comm.poll_abort():
            self.abort_event.set()
            self.trace.record("abort received")
        if not self._drain.is_set() and elastic.drain_requested(self.comm.rank):
            # Set by the transport (DRAIN wire frame, `repro drain`) or by a
            # signal handler (SIGTERM on `repro worker`); the execution
            # threads observe the event at their next iteration boundary.
            self._drain.set()
            self.trace.record("drain requested")
        while True:
            notice = self.comm.poll_fault_notice()
            if notice is None:
                break
            self._apply_fault_notice(notice)
        while self.comm.poll_status_request():
            with self._iteration_lock:
                iteration = self._iteration
            self.comm.reply_status(
                StatusReply(
                    rank=self.comm.rank,
                    state=self.machine.state.value,
                    iteration=iteration,
                    timestamp=time.time(),
                )
            )

    def _standby_main(self, task: RunTask) -> None:
        """Park an elastically-joined rank until it adopts or is released.

        The joiner attaches to the communication contexts non-collectively
        (its peers built theirs long before it was born), replays the run's
        fault history so its view of frozen cells matches the survivors',
        then serves the master loop: heartbeats keep it monitored, a
        :class:`FaultNotice` naming it as adopter starts execution threads
        exactly like any surviving slave's, and the master's end-of-run
        abort (or a drain) releases it.
        """
        comm = self.comm
        comm.rejoin_contexts(is_active_slave=True)
        if task.resume is not None:
            for notice in task.resume.notices:
                self.fault_state.apply(notice)
        config = ExperimentConfig.from_json(task.config_json)
        grid = Grid.from_payload(task.grid_payload)
        self._task, self._config, self._grid = task, config, grid
        self.trace.record("standby", "parked, ready to adopt")
        while True:
            self._serve_master_once()
            live_adopted = any(t.is_alive() for t in self._adopted_threads)
            if self._drain.is_set() and not live_adopted:
                self._drain_and_exit()
                return None
            if self.abort_event.is_set() and not live_adopted:
                break
            time.sleep(self.poll_interval_s)
        for thread in self._adopted_threads:
            thread.join()
        self.machine.finish()
        self._serve_master_once()
        return None

    def _drain_and_exit(self) -> None:
        """The graceful-departure protocol (planned leave, not a fault).

        Joins the execution threads (they stopped at an iteration
        boundary), checkpoints every hosted cell that has not finished,
        ships the batch to the master as a :class:`DrainNotice`, then keeps
        answering heartbeats until the master acknowledges the hand-off —
        the ack means the cells have new owners and this rank may vanish
        without being declared dead.
        """
        comm = self.comm
        for thread in self._adopted_threads:
            thread.join()
        snapshots = []
        for cell_index, cell in sorted(self._cells.items()):
            if cell_index in self._completed_cells:
                continue
            g_genome, d_genome = cell.center_genomes()
            snapshots.append(CellSnapshot(
                cell_index=cell_index,
                iteration=self._cell_iterations.get(cell_index, 0),
                generator_genome=g_genome,
                discriminator_genome=d_genome,
                mixture_weights=cell.mixture.weights.copy(),
            ))
        notice = elastic.DrainNotice(rank=comm.rank, snapshots=tuple(snapshots))
        comm.send_drain_notice(notice)
        self.trace.record("drain notice sent", f"{len(snapshots)} cell(s)")
        deadline = time.monotonic() + DRAIN_ACK_TIMEOUT_S
        acked = False
        while time.monotonic() < deadline:
            self._serve_master_once()
            if comm.poll_drain_ack():
                acked = True
                break
            if self.abort_event.is_set():
                break
            time.sleep(self.poll_interval_s)
        elastic.mark_drained(comm.rank)
        self.machine.finish()
        self._serve_master_once()
        self.trace.record("drained", "acked" if acked else "ack timeout")

    def _apply_fault_notice(self, notice) -> None:
        """Record dead cells; adopt the ones assigned to this rank.

        Runs on the main thread.  The execution threads pick the frozen
        cells up through :class:`FaultState` on their next exchange poll;
        adoption spawns one additional execution thread per inherited cell.
        """
        fresh = self.fault_state.apply(notice)
        if not fresh:
            return
        self.trace.record(
            "fault notice received",
            f"cells {[fc.cell_index for fc in fresh]} ({notice.policy})")
        for frozen in fresh:
            if frozen.adopter_rank == self.comm.rank:
                thread = threading.Thread(
                    target=self._adopted_main,
                    args=(frozen,),
                    name=f"slave-{self.comm.rank}-adopt-{frozen.cell_index}",
                    daemon=True,
                )
                self._adopted_threads.append(thread)
                thread.start()

    # -- execution thread ----------------------------------------------------------------

    def _execution_main(self, task: RunTask, config: ExperimentConfig, grid: Grid,
                        timer: RoutineTimer, result_box: dict) -> None:
        # The execution thread is not the rank's endpoint thread, so it
        # must bind itself for its spans to land in this rank's buffer.
        telemetry.bind_rank(self.comm.rank)
        try:
            result = self._train(task, config, grid, timer)
        except DrainRequested as exc:
            # No result: the main thread checkpoints the cell into a
            # DrainNotice and the adopting rank ships the real result.
            self._execution_error = exc
            return
        except ExchangeAborted as exc:
            self._execution_error = exc
            result = self._partial_result(task, timer, aborted=True)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the main thread
            self._execution_error = exc
            return
        result_box["result"] = result

    def _train(self, task: RunTask, config: ExperimentConfig, grid: Grid,
               timer: RoutineTimer) -> SlaveResult:
        cell_index = task.cell_index
        self.trace.record("assemble execution grid", f"{grid.rows}x{grid.cols}")
        cell = Cell(config, cell_index, self.dataset,
                    neighborhood_size=grid.neighborhood_size(cell_index))
        self._cell = cell
        start, rejoin = 0, 0
        if task.resume is not None:
            # Respawned worker: resume the cell from its checkpoint and
            # rejoin the synchronous exchange at the negotiated iteration.
            snapshot: CellSnapshot = task.resume.snapshot
            cell.restore(snapshot.generator_genome, snapshot.discriminator_genome,
                         snapshot.mixture_weights, snapshot.iteration)
            start, rejoin = snapshot.iteration, task.resume.rejoin_iteration
            with self._iteration_lock:
                self._iteration = start
            self.trace.record("resume from checkpoint",
                              f"iteration {start}, rejoin {rejoin}")
        self.trace.record("start training")
        result = self._train_cell(
            task, config, grid, cell, timer, cell_index=cell_index,
            start=start, rejoin=rejoin,
            inject_fault=task.resume is None, track_iteration=True,
        )
        result.recovered = task.resume is not None
        return result

    def _train_cell(self, task: RunTask, config: ExperimentConfig, grid: Grid,
                    cell: Cell, timer: RoutineTimer, *, cell_index: int,
                    start: int = 0, rejoin: int = 0, inject_fault: bool = False,
                    track_iteration: bool = False) -> SlaveResult:
        """The per-iteration loop, shared by the primary cell, a resumed
        cell (respawned worker) and adopted cells (second execution
        thread).  Iterations below ``rejoin`` run communication-free (see
        :mod:`repro.parallel.recovery`)."""
        resync_until = rejoin + RESYNC_WINDOW if rejoin else None
        self._cells[cell_index] = cell
        self._cell_iterations[cell_index] = start
        for iteration in range(start, config.coevolution.iterations):
            if self.abort_event.is_set():
                raise ExchangeAborted(f"cell {cell_index}: abort before iteration {iteration}")
            if self._drain.is_set():
                # Iteration boundary only — the cell state is consistent
                # here, so the drain checkpoint is exact.
                raise DrainRequested(
                    f"cell {cell_index}: drain before iteration {iteration}")
            if (inject_fault and task.fault_at_iteration is not None
                    and iteration == task.fault_at_iteration):
                if task.fault_kill:
                    # A genuine process death: no exception, no result, no
                    # goodbye — the transport and the heartbeat layer must
                    # notice on their own.  Never reached on the threaded
                    # backend (the runner rejects the combination).
                    os._exit(86)
                raise InjectedFault(
                    f"slave {self.comm.rank} crashing at iteration {iteration} as requested"
                )
            own_g, own_d = cell.center_genomes()
            payload = ExchangePayload(cell_index, iteration, own_g, own_d,
                                      epoch=self.fault_state.current_epoch())
            self.trace.record("get results from neighbours", f"iteration {iteration}")
            received = self.comm.exchange_genomes(
                grid, cell_index, payload, task.exchange_mode, timer, self.abort_event,
                fault_state=self.fault_state,
                catch_up=iteration < rejoin,
                resync_until=resync_until,
            )
            neighbors = self._order_neighbors(grid, cell_index, received, cell)
            self.trace.record("train one iteration", f"iteration {iteration}")
            cell.step(neighbors, timer)
            self._cell_iterations[cell_index] = iteration + 1
            if track_iteration:
                with self._iteration_lock:
                    self._iteration = iteration + 1
            if task.snapshot_every and (iteration + 1) % task.snapshot_every == 0 \
                    and iteration + 1 < config.coevolution.iterations:
                g, d = cell.center_genomes()
                self.comm.send_cell_snapshot(CellSnapshot(
                    cell_index=cell_index,
                    iteration=iteration + 1,
                    generator_genome=g,
                    discriminator_genome=d,
                    mixture_weights=cell.mixture.weights.copy(),
                ))
        self._completed_cells.add(cell_index)
        return self._final_result(task, cell, timer, cell_index=cell_index)

    def _adopted_main(self, frozen: FrozenCell) -> None:
        """Second execution thread: train an adopted cell to completion.

        Restores the dead rank's cell from its checkpoint, catches up
        communication-free to the rejoin iteration, then exchanges
        synchronously on the dead cell's behalf.  Ships its own
        :class:`SlaveResult` (tagged ``recovered``) when done.
        """
        telemetry.bind_rank(self.comm.rank)
        task, config, grid = self._task, self._config, self._grid
        assert task is not None and config is not None and grid is not None
        cell_index = frozen.cell_index
        self.trace.record("adopt cell", f"cell {cell_index} from iteration {frozen.iteration}")
        timer = RoutineTimer() if task.profile else NULL_TIMER
        try:
            cell = Cell(config, cell_index, self.dataset,
                        neighborhood_size=grid.neighborhood_size(cell_index))
            cell.restore(frozen.generator_genome, frozen.discriminator_genome,
                         frozen.mixture_weights, frozen.iteration)
            result = self._train_cell(
                task, config, grid, cell, timer, cell_index=cell_index,
                start=frozen.iteration, rejoin=frozen.rejoin_iteration,
                inject_fault=False, track_iteration=False,
            )
        except DrainRequested:
            # The host rank is leaving; the main thread hands this cell's
            # checkpoint to the master inside its DrainNotice.
            self.trace.record("adopted cell draining", f"cell {cell_index}")
            return
        except ExchangeAborted:
            # The run is being torn down; the master no longer waits for
            # this cell, so there is nothing useful to ship.
            self.trace.record("adopted cell aborted", f"cell {cell_index}")
            return
        except BaseException as exc:  # noqa: BLE001 - adoption must not kill the host
            self.trace.record("adopted cell failed", f"cell {cell_index}: {exc!r}")
            return
        result.recovered = True
        self.trace.record("send adopted results to master", f"cell {cell_index}")
        self.comm.send_result(result)

    @staticmethod
    def _order_neighbors(grid: Grid, cell_index: int,
                         received: dict[int, ExchangePayload],
                         cell: Cell) -> list[tuple[Genome, Genome]]:
        """Arrange received genomes in the cell's canonical neighbor order.

        Missing neighbors (async mode before their first message) fall back
        to the cell's *own* center, matching the initial sub-population
        state; the cell treats them as stale entries.
        """
        ordered = []
        for neighbor_cell in grid.neighbor_cells(cell_index):
            payload = received.get(neighbor_cell)
            if payload is None:
                # Strictly local fallback, consumed by cell.step() on this
                # thread before any training: borrowing the center arenas
                # (alias=True) is safe and skips two vector copies.
                own_g, own_d = cell.center_genomes(alias=True)
                ordered.append((own_g, own_d))
            else:
                ordered.append((payload.generator_genome, payload.discriminator_genome))
        return ordered

    # -- results --------------------------------------------------------------------------

    def _final_result(self, task: RunTask, cell: Cell, timer: RoutineTimer, *,
                      cell_index: int | None = None) -> SlaveResult:
        g_genome, d_genome = cell.center_genomes()
        return SlaveResult(
            rank=self.comm.rank,
            cell_index=task.cell_index if cell_index is None else cell_index,
            generator_genome=g_genome,
            discriminator_genome=d_genome,
            mixture_weights=cell.mixture.weights.copy(),
            reports=cell.reports,
            timer=timer.snapshot() if timer is not NULL_TIMER else None,
            trace_events=list(self.trace.events),
            telemetry=(telemetry.snapshot(self.comm.rank)
                       if telemetry.enabled() else None),
        )

    def _partial_result(self, task: RunTask, timer: RoutineTimer, *,
                        aborted: bool) -> SlaveResult:
        cell = getattr(self, "_cell", None)
        if cell is None:  # pragma: no cover - abort raced the cell construction
            raise RuntimeError("aborted before the cell was constructed")
        result = self._final_result(task, cell, timer)
        result.aborted = aborted
        return result
