"""The master process (paper Section III-B and Fig. 3).

Start-up duties, in the paper's order: (i) gather information about the
computing infrastructure (node-info messages from every slave, plus the
simulated platform model), (ii) decide in which node each slave executes,
(iii) assign workload balancing the per-node load, (iv) share the parameter
configuration with all slaves.  It then launches the slaves (run-task
messages), monitors them through the heartbeat thread, and — once they
finish — gathers their local results and performs the reduction phase,
returning the best generative model found.
"""

from __future__ import annotations

import time


from repro.cluster import ClusterPlatform, PlacementPlan, cluster_uy, place_tasks
from repro.config import ExperimentConfig
from repro.parallel.comm_manager import CommManager
from repro.parallel.grid import Grid
from repro.parallel.heartbeat import HeartbeatMonitor
from repro.parallel.messages import NodeInfo, RunTask, SlaveResult
from repro.parallel.tracing import EventTrace
from repro.telemetry import bus as telemetry

__all__ = ["MasterProcess", "MasterOutcome"]


class MasterOutcome:
    """What the master returns: per-cell results plus liveness bookkeeping."""

    def __init__(self, results: dict[int, SlaveResult], dead_ranks: list[int],
                 node_info: list[NodeInfo], placement: dict[int, str],
                 trace: EventTrace, wall_time_s: float):
        self.results = results
        self.dead_ranks = dead_ranks
        self.node_info = node_info
        self.placement = placement
        self.trace = trace
        self.wall_time_s = wall_time_s

    @property
    def complete(self) -> bool:
        return not self.dead_ranks


class MasterProcess:
    """One master rank; drive with :meth:`run`."""

    def __init__(self, comm: CommManager, config: ExperimentConfig, *,
                 platform: ClusterPlatform | None = None,
                 placement_plan: PlacementPlan | None = None,
                 exchange_mode: str = "neighbors", profile: bool = False,
                 trace: bool = False, fault_at: dict[int, int] | None = None,
                 fault_kill: bool = False,
                 heartbeat_interval_s: float | None = None,
                 miss_limit: int = 8,
                 telemetry_level: str | None = None):
        self.comm = comm
        self.config = config
        self.platform = platform if platform is not None else cluster_uy()
        self.placement_plan = placement_plan
        self.exchange_mode = exchange_mode
        self.profile = profile
        self.trace_enabled = trace
        self.fault_at = dict(fault_at or {})
        self.fault_kill = fault_kill
        self.heartbeat_interval_s = (
            heartbeat_interval_s
            if heartbeat_interval_s is not None
            else config.execution.heartbeat_interval_s
        )
        self.miss_limit = miss_limit
        self.telemetry_level = telemetry_level
        self.trace = EventTrace(actor="master", enabled=trace)

    def run(self) -> MasterOutcome:
        comm = self.comm
        config = self.config
        if self.telemetry_level is not None:
            # The master rank itself may be a remote worker that never saw
            # the launcher's environment; the level travels in its options.
            telemetry.set_level(self.telemetry_level)
        start = time.perf_counter()
        rows, cols = config.coevolution.grid_rows, config.coevolution.grid_cols
        grid = Grid(rows, cols, first_slave_rank=1)
        slave_ranks = grid.slave_ranks()

        # (i) Gather infrastructure information.
        node_info = comm.collect_node_info()
        self.trace.record("node info gathered", f"{len(node_info)} slaves")

        # (ii)+(iii) Placement: either the plan the launcher derived from
        # the real host spec (socket backend), or the load-balancing
        # strategy over the (simulated) platform.
        if self.placement_plan is not None:
            plan = self.placement_plan
            if plan.tasks != len(slave_ranks) + 1:
                raise ValueError(
                    f"placement plan covers {plan.tasks} rank(s), job has "
                    f"{len(slave_ranks) + 1}")
        else:
            plan = place_tasks(self.platform, tasks=len(slave_ranks) + 1)
        placement = {0: plan.task_nodes[0]}
        for i, rank in enumerate(slave_ranks):
            placement[rank] = plan.task_nodes[i + 1]
        self.trace.record("placement decided",
                          f"{len(plan.tasks_per_node())} nodes, max load {plan.max_load()}")

        # (iv) Share the parameter configuration; launch the slaves.
        config_json = config.to_json()
        slave_telemetry = telemetry.level_name() if telemetry.enabled() else None
        for rank in slave_ranks:
            cell_index = grid.cell_of_rank(rank)
            comm.send_run_task(rank, RunTask(
                config_json=config_json,
                cell_index=cell_index,
                grid_payload=grid.to_payload(),
                assigned_node=placement[rank],
                exchange_mode=self.exchange_mode,
                profile=self.profile,
                trace=self.trace_enabled,
                telemetry_level=slave_telemetry,
                fault_at_iteration=self.fault_at.get(cell_index),
                fault_kill=self.fault_kill,
            ))
        self.trace.record("run tasks sent", f"{len(slave_ranks)} slaves")

        # Join the collective context derivation (LOCAL excludes the master).
        comm.build_contexts(is_active_slave=False)

        # Background monitoring (Fig. 3: "Create heartbeat thread").
        self.trace.record("create heartbeat thread")
        monitor = HeartbeatMonitor(
            comm, slave_ranks,
            interval_s=self.heartbeat_interval_s, miss_limit=self.miss_limit,
        )
        monitor.start()

        # Main thread: collect results as slaves finish.
        results: dict[int, SlaveResult] = {}
        aborted = False
        try:
            while True:
                result = comm.try_collect_result(timeout=0.1)
                if result is not None:
                    results[result.cell_index] = result
                    monitor.mark_finished(result.rank)
                    self.trace.record("result received", f"cell {result.cell_index}")
                if monitor.deaths_detected.is_set() and not aborted:
                    # Failure detected: gracefully abort the survivors.
                    aborted = True
                    dead = set(monitor.dead_ranks())
                    self.trace.record("slave failure detected",
                                      ", ".join(str(r) for r in sorted(dead)))
                    for rank in slave_ranks:
                        if rank not in dead:
                            comm.send_abort(rank)
                if len(results) == len(slave_ranks):
                    break
                if monitor.all_accounted():
                    # Everyone is finished or dead; drain stragglers briefly.
                    result = comm.try_collect_result(timeout=1.0)
                    if result is not None:
                        results[result.cell_index] = result
                        monitor.mark_finished(result.rank)
                        continue
                    break
        finally:
            monitor.stop()

        # Reduction phase happens in the runner (it has the metric context);
        # the master returns everything it gathered.
        self.trace.record("final results gathered", f"{len(results)} cells")
        return MasterOutcome(
            results=results,
            dead_ranks=monitor.dead_ranks(),
            node_info=node_info,
            placement=placement,
            trace=self.trace,
            wall_time_s=time.perf_counter() - start,
        )
