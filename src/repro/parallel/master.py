"""The master process (paper Section III-B and Fig. 3).

Start-up duties, in the paper's order: (i) gather information about the
computing infrastructure (node-info messages from every slave, plus the
simulated platform model), (ii) decide in which node each slave executes,
(iii) assign workload balancing the per-node load, (iv) share the parameter
configuration with all slaves.  It then launches the slaves (run-task
messages), monitors them through the heartbeat thread, and — once they
finish — gathers their local results and performs the reduction phase,
returning the best generative model found.
"""

from __future__ import annotations

import time


from repro.cluster import ClusterPlatform, PlacementPlan, cluster_uy, place_tasks
from repro.config import ExperimentConfig
from repro.coevolution.checkpoint import CellCheckpointStore, initial_cell_snapshot
from repro.parallel.comm_manager import CommManager
from repro.parallel.elastic import DrainNotice, MembershipLog, MembershipTable
from repro.parallel.grid import Grid
from repro.parallel.heartbeat import HeartbeatMonitor
from repro.parallel.messages import NodeInfo, RunTask, SlaveResult
from repro.parallel.recovery import (
    FaultNotice,
    FrozenCell,
    ResumeDirective,
    plan_rebalance,
    rejoin_iteration,
    validate_fault_policy,
)
from repro.parallel.tracing import EventTrace
from repro.telemetry import bus as telemetry

__all__ = ["MasterProcess", "MasterOutcome"]


class MasterOutcome:
    """What the master returns: per-cell results plus liveness bookkeeping."""

    def __init__(self, results: dict[int, SlaveResult], dead_ranks: list[int],
                 node_info: list[NodeInfo], placement: dict[int, str],
                 trace: EventTrace, wall_time_s: float,
                 degraded_ranks: list[int] | None = None,
                 recovered_ranks: list[int] | None = None,
                 drained_ranks: list[int] | None = None,
                 joined_ranks: list[int] | None = None,
                 membership: MembershipLog | None = None):
        self.results = results
        self.dead_ranks = dead_ranks
        self.node_info = node_info
        self.placement = placement
        self.trace = trace
        self.wall_time_s = wall_time_s
        self.degraded_ranks = degraded_ranks or []
        self.recovered_ranks = recovered_ranks or []
        self.drained_ranks = drained_ranks or []
        self.joined_ranks = joined_ranks or []
        self.membership = membership if membership is not None else MembershipLog()

    @property
    def complete(self) -> bool:
        return not self.dead_ranks


class MasterProcess:
    """One master rank; drive with :meth:`run`."""

    def __init__(self, comm: CommManager, config: ExperimentConfig, *,
                 platform: ClusterPlatform | None = None,
                 placement_plan: PlacementPlan | None = None,
                 exchange_mode: str = "neighbors", profile: bool = False,
                 trace: bool = False, fault_at: dict[int, int] | None = None,
                 fault_kill: bool = False,
                 heartbeat_interval_s: float | None = None,
                 miss_limit: int = 8,
                 telemetry_level: str | None = None,
                 fault_policy: str = "abort",
                 snapshot_every: int = 0,
                 max_restarts: int = 0,
                 restart_grace_s: float = 30.0,
                 respawn_expected: bool = False):
        self.comm = comm
        self.config = config
        self.platform = platform if platform is not None else cluster_uy()
        self.placement_plan = placement_plan
        self.exchange_mode = exchange_mode
        self.profile = profile
        self.trace_enabled = trace
        self.fault_at = dict(fault_at or {})
        self.fault_kill = fault_kill
        self.fault_policy = validate_fault_policy(fault_policy)
        self.snapshot_every = snapshot_every
        self.max_restarts = max_restarts
        self.restart_grace_s = restart_grace_s
        self.respawn_expected = respawn_expected
        self.heartbeat_interval_s = (
            heartbeat_interval_s
            if heartbeat_interval_s is not None
            else config.execution.heartbeat_interval_s
        )
        self.miss_limit = miss_limit
        self.telemetry_level = telemetry_level
        self.trace = EventTrace(actor="master", enabled=trace)

    def run(self) -> MasterOutcome:
        comm = self.comm
        config = self.config
        if self.telemetry_level is not None:
            # The master rank itself may be a remote worker that never saw
            # the launcher's environment; the level travels in its options.
            telemetry.set_level(self.telemetry_level)
        start = time.perf_counter()
        rows, cols = config.coevolution.grid_rows, config.coevolution.grid_cols
        grid = Grid(rows, cols, first_slave_rank=1)
        slave_ranks = grid.slave_ranks()

        # (i) Gather infrastructure information.
        node_info = comm.collect_node_info()
        self.trace.record("node info gathered", f"{len(node_info)} slaves")

        # (ii)+(iii) Placement: either the plan the launcher derived from
        # the real host spec (socket backend), or the load-balancing
        # strategy over the (simulated) platform.
        if self.placement_plan is not None:
            plan = self.placement_plan
            if plan.tasks != len(slave_ranks) + 1:
                raise ValueError(
                    f"placement plan covers {plan.tasks} rank(s), job has "
                    f"{len(slave_ranks) + 1}")
        else:
            plan = place_tasks(self.platform, tasks=len(slave_ranks) + 1)
        placement = {0: plan.task_nodes[0]}
        for i, rank in enumerate(slave_ranks):
            placement[rank] = plan.task_nodes[i + 1]
        self.trace.record("placement decided",
                          f"{len(plan.tasks_per_node())} nodes, max load {plan.max_load()}")

        # (iv) Share the parameter configuration; launch the slaves.
        config_json = config.to_json()
        slave_telemetry = telemetry.level_name() if telemetry.enabled() else None
        for rank in slave_ranks:
            cell_index = grid.cell_of_rank(rank)
            comm.send_run_task(rank, RunTask(
                config_json=config_json,
                cell_index=cell_index,
                grid_payload=grid.to_payload(),
                assigned_node=placement[rank],
                exchange_mode=self.exchange_mode,
                profile=self.profile,
                trace=self.trace_enabled,
                telemetry_level=slave_telemetry,
                fault_at_iteration=self.fault_at.get(cell_index),
                fault_kill=self.fault_kill,
                fault_policy=self.fault_policy,
                snapshot_every=self.snapshot_every,
            ))
        self.trace.record("run tasks sent", f"{len(slave_ranks)} slaves")

        # Join the collective context derivation (LOCAL excludes the master).
        comm.build_contexts(is_active_slave=False)

        # Background monitoring (Fig. 3: "Create heartbeat thread").
        self.trace.record("create heartbeat thread")
        monitor = HeartbeatMonitor(
            comm, slave_ranks,
            interval_s=self.heartbeat_interval_s, miss_limit=self.miss_limit,
        )
        monitor.start()

        # Main thread: collect results as slaves finish.  Recovery
        # bookkeeping: ``hosted`` maps each live rank to every cell it
        # currently trains (grows through adoption), ``outstanding`` to the
        # subset the master still awaits a result for.
        results: dict[int, SlaveResult] = {}
        hosted = {rank: {grid.cell_of_rank(rank)} for rank in slave_ranks}
        outstanding = {rank: set(cells) for rank, cells in hosted.items()}
        store = CellCheckpointStore()
        ledger: list[FaultNotice] = []
        handled_dead: set[int] = set()
        degraded_ranks: set[int] = set()
        recovered_ranks: set[int] = set()
        # Elastic membership: one table records every epoch transition; the
        # auxiliary sets drive re-balancing and the end-of-run release.
        membership = MembershipTable(slave_ranks)
        drained_ranks: set[int] = set()
        standby_ranks: set[int] = set()
        joined_ranks: set[int] = set()
        vacant: set[int] = set()  # departed slots not (yet) refilled
        degraded_cells: dict[int, FrozenCell] = {}
        elastic_state = dict(
            grid=grid, results=results, hosted=hosted, outstanding=outstanding,
            store=store, monitor=monitor, ledger=ledger,
            handled_dead=handled_dead, degraded_ranks=degraded_ranks,
            recovered_ranks=recovered_ranks, membership=membership,
            drained_ranks=drained_ranks, standby_ranks=standby_ranks,
            joined_ranks=joined_ranks, vacant=vacant,
            degraded_cells=degraded_cells, config_json=config_json,
            placement=placement, slave_telemetry=slave_telemetry,
            node_info=node_info)
        self._restarts_used = 0
        self._stray_node_info: list[NodeInfo] = []
        aborted = False
        try:
            while True:
                result = comm.try_collect_result(timeout=0.1)
                if result is not None:
                    self._note_result(result, results, outstanding, monitor)
                self._drain_snapshots(store)
                # Planned departures come in *before* death handling: a
                # draining rank that also tripped the miss limit must be
                # handed off from its fresh snapshots, not "recovered".
                while not aborted:
                    drain_notice = comm.poll_drain_notice()
                    if drain_notice is None:
                        break
                    aborted = self._handle_drain(drain_notice, **elastic_state)
                # A NodeInfo outside start-up/respawn-grace is an elastic
                # joiner filling a vacant slot.  One whose slot is not (yet)
                # vacant is parked: it may be a respawn racing its own death
                # declaration (_await_respawns claims it from the stash) or
                # a joiner racing the heartbeat's detection of the vacancy.
                if not aborted:
                    info = comm.try_collect_node_info(timeout=0.0)
                    if info is not None:
                        self._stray_node_info.append(info)
                    for stray in list(self._stray_node_info):
                        if stray.rank in vacant:
                            self._stray_node_info.remove(stray)
                            self._handle_join(stray, **elastic_state)
                if monitor.deaths_detected.is_set() and not aborted:
                    # Clear *before* reading the dead set: a death declared
                    # between the read and the clear must re-raise the flag.
                    monitor.deaths_detected.clear()
                    dead_now = sorted(set(monitor.dead_ranks()) - vacant)
                    if dead_now:
                        with telemetry.span("fault.detected", rank=0):
                            self.trace.record(
                                "slave failure detected",
                                ", ".join(str(r) for r in dead_now))
                            if self.fault_policy == "abort":
                                # Paper-faithful: gracefully abort survivors.
                                aborted = True
                                handled_dead.update(dead_now)
                                vacant.update(dead_now)
                                membership.bump("death", dead_now)
                                dead = set(monitor.dead_ranks()) | drained_ranks
                                for rank in slave_ranks:
                                    if rank not in dead:
                                        comm.send_abort(rank)
                            else:
                                self._handle_deaths(dead_now, **elastic_state)
                if len(results) == len(slave_ranks):
                    break
                if monitor.all_accounted():
                    # Everyone is finished or dead; drain stragglers briefly.
                    result = comm.try_collect_result(timeout=1.0)
                    if result is not None:
                        self._note_result(result, results, outstanding, monitor)
                        continue
                    break
            # Release parked joiners: a standby rank serves until the
            # master's abort reaches it (its adopted cells, if any, have
            # already shipped — the completion check above said so).
            for rank in sorted(standby_ranks - vacant):
                comm.send_abort(rank)
        finally:
            monitor.stop()

        # Reduction phase happens in the runner (it has the metric context);
        # the master returns everything it gathered.
        self.trace.record("final results gathered", f"{len(results)} cells")
        return MasterOutcome(
            results=results,
            dead_ranks=sorted(handled_dead | set(monitor.dead_ranks())),
            node_info=node_info,
            placement=placement,
            trace=self.trace,
            wall_time_s=time.perf_counter() - start,
            degraded_ranks=sorted(degraded_ranks),
            recovered_ranks=sorted(recovered_ranks),
            drained_ranks=sorted(drained_ranks),
            joined_ranks=sorted(joined_ranks),
            membership=membership.log,
        )

    # -- recovery machinery ---------------------------------------------------------

    def _note_result(self, result: SlaveResult, results: dict[int, SlaveResult],
                     outstanding: dict[int, set[int]],
                     monitor: HeartbeatMonitor) -> None:
        results[result.cell_index] = result
        owner = next((rank for rank, cells in outstanding.items()
                      if result.cell_index in cells), None)
        if owner is not None:
            outstanding[owner].discard(result.cell_index)
        sender = result.rank
        if sender in outstanding and not outstanding[sender]:
            # A rank is finished only once every cell it hosts (own plus
            # adopted) has reported; until then the heartbeat keeps watch.
            resurrected = monitor.mark_finished(sender)
            if resurrected:
                self.trace.record("rank resurrected by result", f"rank {sender}")
        label = "recovered result received" if result.recovered else "result received"
        self.trace.record(label, f"cell {result.cell_index} from rank {sender}")

    def _drain_snapshots(self, store: CellCheckpointStore) -> None:
        if not self.snapshot_every:
            return
        for snapshot in self.comm.drain_cell_snapshots():
            store.update(snapshot)

    def _rejoin_point(self, monitor: HeartbeatMonitor, store: CellCheckpointStore,
                      grid: Grid, extra_iterations: list[int]) -> int:
        known = [l.iteration for l in monitor.snapshot().values() if not l.dead]
        known += list(store.iterations().values())
        known += extra_iterations
        diameter = grid.rows // 2 + grid.cols // 2
        return rejoin_iteration(known, diameter,
                                self.config.coevolution.iterations)

    def _rebalance_plan(self, orphans: list[int], *, grid: Grid,
                        outstanding: dict[int, set[int]],
                        standby_ranks: set[int],
                        vacant: set[int]) -> dict[int, int | None]:
        """The deterministic re-assignment for a batch of orphaned cells.

        Candidates are the still-working survivors plus parked standby
        joiners (load 0 by construction — prime targets); departed slots
        are excluded.  Locality-aware: see :func:`plan_rebalance`.
        """
        candidates: dict[int, set[int]] = {
            rank: set(cells) for rank, cells in outstanding.items()
            if cells and rank not in vacant
        }
        for rank in standby_ranks:
            if rank not in vacant:
                candidates.setdefault(rank, set())
        with telemetry.span("elastic.rebalance", rank=0):
            return plan_rebalance(orphans, candidates, grid=grid,
                                  excluded=vacant)

    def _notify_survivors(self, notice: FaultNotice,
                          outstanding: dict[int, set[int]],
                          standby_ranks: set[int],
                          skip: set[int]) -> None:
        """Broadcast a fault/hand-off notice to every rank that exchanges —
        including parked standby joiners, which adopt through it."""
        for rank, cells in outstanding.items():
            if (cells or rank in standby_ranks) and rank not in skip:
                self.comm.send_fault_notice(rank, notice)

    def _handle_deaths(self, dead_now: list[int], *, grid: Grid,
                       results: dict[int, SlaveResult],
                       hosted: dict[int, set[int]],
                       outstanding: dict[int, set[int]],
                       store: CellCheckpointStore,
                       monitor: HeartbeatMonitor,
                       ledger: list[FaultNotice],
                       handled_dead: set[int],
                       degraded_ranks: set[int],
                       recovered_ranks: set[int],
                       membership: MembershipTable,
                       drained_ranks: set[int],
                       standby_ranks: set[int],
                       joined_ranks: set[int],
                       vacant: set[int],
                       degraded_cells: dict[int, FrozenCell],
                       config_json: str,
                       placement: dict[int, str],
                       slave_telemetry: str | None,
                       node_info: list[NodeInfo]) -> None:
        """Turn a wave of detected deaths into migrations/respawns/freezes."""
        comm = self.comm
        # Drain in-flight results first: a result that raced its own death
        # declaration means the cell needs no recovery at all.
        while True:
            result = comm.try_collect_result(timeout=0.0)
            if result is None:
                break
            self._note_result(result, results, outstanding, monitor)
        self._drain_snapshots(store)
        lost: list[tuple[int, int]] = []  # (dead rank, orphaned cell)
        for rank in dead_now:
            handled_dead.add(rank)
            vacant.add(rank)
            standby_ranks.discard(rank)  # a parked joiner can die too
            cells = outstanding.pop(rank, set())
            hosted.pop(rank, None)
            lost.extend((rank, cell) for cell in sorted(cells)
                        if cell not in results)
        epoch = membership.bump("death", dead_now,
                                sorted(cell for _rank, cell in lost))
        if not lost:
            return
        snapshots = {
            cell: (store.latest(cell)
                   or initial_cell_snapshot(self.config, cell,
                                            grid.neighborhood_size(cell)))
            for _rank, cell in lost
        }
        rejoin = self._rejoin_point(
            monitor, store, grid,
            [snap.iteration for snap in snapshots.values()])
        total = self.config.coevolution.iterations

        reborn: dict[int, NodeInfo] = {}
        if self.fault_policy == "recover" and self.respawn_expected:
            budget = self.max_restarts - self._restarts_used
            want = sorted({rank for rank, _cell in lost})[:max(0, budget)]
            if want:
                reborn = self._await_respawns(
                    want, results=results, outstanding=outstanding,
                    store=store, monitor=monitor)
                self._restarts_used += len(reborn)
                node_info.extend(reborn.values())
                if reborn:
                    membership.bump("respawn", sorted(reborn))
                    vacant.difference_update(reborn)

        plan: dict[int, int | None] = {}
        if self.fault_policy == "recover":
            orphans = [cell for rank, cell in lost if rank not in reborn]
            if orphans:
                plan = self._rebalance_plan(
                    orphans, grid=grid, outstanding=outstanding,
                    standby_ranks=standby_ranks, vacant=vacant)

        frozen_cells: list[FrozenCell] = []
        resume_ranks: dict[int, FrozenCell] = {}
        for rank, cell in lost:
            snap = snapshots[cell]
            if rank in reborn:
                frozen = FrozenCell(
                    cell_index=cell, iteration=snap.iteration,
                    generator_genome=snap.generator_genome,
                    discriminator_genome=snap.discriminator_genome,
                    mixture_weights=snap.mixture_weights,
                    adopter_rank=rank, rejoin_iteration=rejoin, epoch=epoch)
                resume_ranks[rank] = frozen
                hosted.setdefault(rank, set()).add(cell)
                outstanding.setdefault(rank, set()).add(cell)
                monitor.revive(rank)
                recovered_ranks.add(rank)
                self.trace.record("rank respawned",
                                  f"rank {rank} resumes cell {cell} at "
                                  f"iteration {snap.iteration}, rejoin {rejoin}")
            elif self.fault_policy == "recover":
                adopter = plan.get(cell)
                if adopter is not None:
                    frozen = FrozenCell(
                        cell_index=cell, iteration=snap.iteration,
                        generator_genome=snap.generator_genome,
                        discriminator_genome=snap.discriminator_genome,
                        mixture_weights=snap.mixture_weights,
                        adopter_rank=adopter, rejoin_iteration=rejoin,
                        epoch=epoch)
                    hosted.setdefault(adopter, set()).add(cell)
                    outstanding.setdefault(adopter, set()).add(cell)
                    recovered_ranks.add(rank)
                    with telemetry.span("fault.migrated", rank=0):
                        self.trace.record(
                            "cell migrated",
                            f"cell {cell} -> rank {adopter} from iteration "
                            f"{snap.iteration}, rejoin {rejoin}")
                else:
                    frozen = self._freeze_cell(rank, cell, snap, results,
                                               degraded_ranks, total,
                                               epoch=epoch,
                                               degraded_cells=degraded_cells)
            else:  # degrade
                frozen = self._freeze_cell(rank, cell, snap, results,
                                           degraded_ranks, total,
                                           epoch=epoch,
                                           degraded_cells=degraded_cells)
            frozen_cells.append(frozen)

        notice = FaultNotice(
            policy=self.fault_policy,
            dead_ranks=tuple(sorted({rank for rank, _cell in lost})),
            cells=tuple(frozen_cells))
        ledger.append(notice)
        self._notify_survivors(notice, outstanding, standby_ranks,
                               skip=set(resume_ranks))
        for rank, frozen in resume_ranks.items():
            with telemetry.span("fault.restarted", rank=0):
                comm.send_run_task(rank, RunTask(
                    config_json=config_json,
                    cell_index=frozen.cell_index,
                    grid_payload=grid.to_payload(),
                    assigned_node=placement[rank],
                    exchange_mode=self.exchange_mode,
                    profile=self.profile,
                    trace=self.trace_enabled,
                    telemetry_level=slave_telemetry,
                    fault_policy=self.fault_policy,
                    snapshot_every=self.snapshot_every,
                    resume=ResumeDirective(
                        snapshot=frozen.snapshot(),
                        rejoin_iteration=frozen.rejoin_iteration,
                        notices=tuple(ledger)),
                ))

    def _handle_drain(self, drain: DrainNotice, *, grid: Grid,
                      results: dict[int, SlaveResult],
                      hosted: dict[int, set[int]],
                      outstanding: dict[int, set[int]],
                      store: CellCheckpointStore,
                      monitor: HeartbeatMonitor,
                      ledger: list[FaultNotice],
                      handled_dead: set[int],
                      degraded_ranks: set[int],
                      recovered_ranks: set[int],
                      membership: MembershipTable,
                      drained_ranks: set[int],
                      standby_ranks: set[int],
                      joined_ranks: set[int],
                      vacant: set[int],
                      degraded_cells: dict[int, FrozenCell],
                      config_json: str,
                      placement: dict[int, str],
                      slave_telemetry: str | None,
                      node_info: list[NodeInfo]) -> bool:
        """A planned departure: hand the leaving rank's cells off cleanly.

        Unlike a death, the snapshots in the notice are *exact* — taken at
        an iteration boundary moments ago — so the hand-off loses no work.
        Returns True when the drain forced an abort (abort policy with
        unfinished cells: there is no recovery machinery to take them).
        """
        comm = self.comm
        rank = drain.rank
        if rank in vacant:
            comm.send_drain_ack(rank)  # duplicate or already-departed
            return False
        with telemetry.span("elastic.drain", rank=0):
            self.trace.record("drain notice received",
                              f"rank {rank}, {len(drain.snapshots)} cell(s)")
            for snap in drain.snapshots:
                store.update(snap)
            while True:
                result = comm.try_collect_result(timeout=0.0)
                if result is None:
                    break
                self._note_result(result, results, outstanding, monitor)
            drained_ranks.add(rank)
            vacant.add(rank)
            standby_ranks.discard(rank)
            monitor.retire(rank)
            cells = outstanding.pop(rank, set())
            hosted.pop(rank, None)
            orphans = sorted(cell for cell in cells if cell not in results)
            epoch = membership.bump("drain", [rank], orphans)
            if not orphans:
                comm.send_drain_ack(rank)
                return False
            if self.fault_policy == "abort":
                # No recovery machinery to take the cells: paper-faithful
                # graceful abort, same as a death under this policy.
                for peer in sorted(outstanding):
                    if outstanding[peer] and peer not in vacant:
                        comm.send_abort(peer)
                comm.send_drain_ack(rank)
                return True
            snapshots = {
                cell: (store.latest(cell)
                       or initial_cell_snapshot(self.config, cell,
                                                grid.neighborhood_size(cell)))
                for cell in orphans
            }
            rejoin = self._rejoin_point(
                monitor, store, grid,
                [snap.iteration for snap in snapshots.values()])
            total = self.config.coevolution.iterations
            plan: dict[int, int | None] = {}
            if self.fault_policy == "recover":
                plan = self._rebalance_plan(
                    orphans, grid=grid, outstanding=outstanding,
                    standby_ranks=standby_ranks, vacant=vacant)
            frozen_cells: list[FrozenCell] = []
            for cell in orphans:
                snap = snapshots[cell]
                adopter = plan.get(cell)
                if adopter is not None:
                    frozen = FrozenCell(
                        cell_index=cell, iteration=snap.iteration,
                        generator_genome=snap.generator_genome,
                        discriminator_genome=snap.discriminator_genome,
                        mixture_weights=snap.mixture_weights,
                        adopter_rank=adopter, rejoin_iteration=rejoin,
                        epoch=epoch)
                    hosted.setdefault(adopter, set()).add(cell)
                    outstanding.setdefault(adopter, set()).add(cell)
                    self.trace.record(
                        "cell handed off",
                        f"cell {cell} -> rank {adopter} from iteration "
                        f"{snap.iteration}, rejoin {rejoin}")
                else:
                    frozen = self._freeze_cell(rank, cell, snap, results,
                                               degraded_ranks, total,
                                               epoch=epoch,
                                               degraded_cells=degraded_cells)
                frozen_cells.append(frozen)
            notice = FaultNotice(
                policy=self.fault_policy,
                dead_ranks=(rank,),
                cells=tuple(frozen_cells))
            ledger.append(notice)
            self._notify_survivors(notice, outstanding, standby_ranks,
                                   skip={rank})
            comm.send_drain_ack(rank)
        return False

    def _handle_join(self, info: NodeInfo, *, grid: Grid,
                     results: dict[int, SlaveResult],
                     hosted: dict[int, set[int]],
                     outstanding: dict[int, set[int]],
                     store: CellCheckpointStore,
                     monitor: HeartbeatMonitor,
                     ledger: list[FaultNotice],
                     handled_dead: set[int],
                     degraded_ranks: set[int],
                     recovered_ranks: set[int],
                     membership: MembershipTable,
                     drained_ranks: set[int],
                     standby_ranks: set[int],
                     joined_ranks: set[int],
                     vacant: set[int],
                     degraded_cells: dict[int, FrozenCell],
                     config_json: str,
                     placement: dict[int, str],
                     slave_telemetry: str | None,
                     node_info: list[NodeInfo]) -> None:
        """A late rendezvous: a fresh worker filled a vacant rank slot.

        If the slot's home cell sits frozen-degraded, the joiner reclaims
        it (an epoch-newer hand-off notice re-animates it for the peers);
        otherwise the joiner parks as standby, first in line for the next
        drain or death.
        """
        rank = info.rank
        if rank not in vacant:
            return  # start-up duplicate, or a slot that is not joinable
        comm = self.comm
        with telemetry.span("elastic.join", rank=0):
            node_info.append(info)
            placement[rank] = info.node_name
            vacant.discard(rank)
            joined_ranks.add(rank)
            monitor.revive(rank)
            cell = grid.cell_of_rank(rank)
            frozen_old = degraded_cells.pop(cell, None)
            if frozen_old is not None:
                # Re-freeze migration: the degraded placeholder result goes
                # away, the joiner resumes the cell from its checkpoint.
                results.pop(cell, None)
                degraded_ranks.discard(rank)
                snap = store.latest(cell) or frozen_old.snapshot()
                rejoin = self._rejoin_point(monitor, store, grid,
                                            [snap.iteration])
                epoch = membership.bump("join", [rank], [cell])
                frozen = FrozenCell(
                    cell_index=cell, iteration=snap.iteration,
                    generator_genome=snap.generator_genome,
                    discriminator_genome=snap.discriminator_genome,
                    mixture_weights=snap.mixture_weights,
                    adopter_rank=rank, rejoin_iteration=rejoin, epoch=epoch)
                notice = FaultNotice(policy=self.fault_policy,
                                     dead_ranks=(), cells=(frozen,))
                ledger.append(notice)
                self._notify_survivors(notice, outstanding, standby_ranks,
                                       skip={rank})
                hosted.setdefault(rank, set()).add(cell)
                outstanding.setdefault(rank, set()).add(cell)
                recovered_ranks.add(rank)
                self.trace.record(
                    "joiner reclaims degraded cell",
                    f"rank {rank} resumes cell {cell} at iteration "
                    f"{snap.iteration}, rejoin {rejoin}")
                comm.send_run_task(rank, RunTask(
                    config_json=config_json,
                    cell_index=cell,
                    grid_payload=grid.to_payload(),
                    assigned_node=placement[rank],
                    exchange_mode=self.exchange_mode,
                    profile=self.profile,
                    trace=self.trace_enabled,
                    telemetry_level=slave_telemetry,
                    fault_policy=self.fault_policy,
                    snapshot_every=self.snapshot_every,
                    resume=ResumeDirective(
                        snapshot=snap,
                        rejoin_iteration=rejoin,
                        notices=tuple(ledger)),
                ))
            else:
                epoch = membership.bump("join", [rank])
                standby_ranks.add(rank)
                hosted[rank] = set()
                outstanding.setdefault(rank, set())
                self.trace.record("standby joiner parked",
                                  f"rank {rank} at epoch {epoch}")
                comm.send_run_task(rank, RunTask(
                    config_json=config_json,
                    cell_index=cell,
                    grid_payload=grid.to_payload(),
                    assigned_node=placement.get(rank, info.node_name),
                    exchange_mode=self.exchange_mode,
                    profile=self.profile,
                    trace=self.trace_enabled,
                    telemetry_level=slave_telemetry,
                    fault_policy=self.fault_policy,
                    snapshot_every=self.snapshot_every,
                    standby=True,
                    resume=ResumeDirective(
                        snapshot=None,
                        rejoin_iteration=0,
                        notices=tuple(ledger)),
                ))

    def _freeze_cell(self, rank: int, cell: int, snap, results: dict[int, SlaveResult],
                     degraded_ranks: set[int], total_iterations: int, *,
                     epoch: int = 0,
                     degraded_cells: dict[int, FrozenCell] | None = None) -> FrozenCell:
        """Degrade: the cell stays at its checkpoint for the rest of the run."""
        degraded_ranks.add(rank)
        results[cell] = SlaveResult(
            rank=rank, cell_index=cell,
            generator_genome=snap.generator_genome,
            discriminator_genome=snap.discriminator_genome,
            mixture_weights=snap.mixture_weights,
            reports=[])
        self.trace.record("cell frozen",
                          f"cell {cell} degraded at iteration {snap.iteration}")
        frozen = FrozenCell(
            cell_index=cell, iteration=snap.iteration,
            generator_genome=snap.generator_genome,
            discriminator_genome=snap.discriminator_genome,
            mixture_weights=snap.mixture_weights,
            adopter_rank=None, rejoin_iteration=total_iterations, epoch=epoch)
        if degraded_cells is not None:
            # Remembered so a later joiner can reclaim the cell live.
            degraded_cells[cell] = frozen
        return frozen

    def _await_respawns(self, want: list[int], *, results, outstanding,
                        store, monitor) -> dict[int, NodeInfo]:
        """Wait (bounded) for replacement workers to introduce themselves."""
        reborn: dict[int, NodeInfo] = {}
        pending = set(want)
        # A respawn may have introduced itself before its death was even
        # handled — the main loop stashed the stray NodeInfo for us.
        for info in list(self._stray_node_info):
            if info.rank in pending:
                self._stray_node_info.remove(info)
                reborn[info.rank] = info
                pending.discard(info.rank)
        deadline = time.monotonic() + self.restart_grace_s
        self.trace.record("awaiting respawn", ", ".join(str(r) for r in want))
        while pending and time.monotonic() < deadline:
            info = self.comm.try_collect_node_info(timeout=0.1)
            if info is not None and info.rank in pending:
                reborn[info.rank] = info
                pending.discard(info.rank)
                continue
            result = self.comm.try_collect_result(timeout=0.0)
            if result is not None:
                self._note_result(result, results, outstanding, monitor)
            self._drain_snapshots(store)
        return reborn
