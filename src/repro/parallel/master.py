"""The master process (paper Section III-B and Fig. 3).

Start-up duties, in the paper's order: (i) gather information about the
computing infrastructure (node-info messages from every slave, plus the
simulated platform model), (ii) decide in which node each slave executes,
(iii) assign workload balancing the per-node load, (iv) share the parameter
configuration with all slaves.  It then launches the slaves (run-task
messages), monitors them through the heartbeat thread, and — once they
finish — gathers their local results and performs the reduction phase,
returning the best generative model found.
"""

from __future__ import annotations

import time


from repro.cluster import ClusterPlatform, PlacementPlan, cluster_uy, place_tasks
from repro.config import ExperimentConfig
from repro.coevolution.checkpoint import CellCheckpointStore, initial_cell_snapshot
from repro.parallel.comm_manager import CommManager
from repro.parallel.grid import Grid
from repro.parallel.heartbeat import HeartbeatMonitor
from repro.parallel.messages import NodeInfo, RunTask, SlaveResult
from repro.parallel.recovery import (
    FaultNotice,
    FrozenCell,
    ResumeDirective,
    choose_adopter,
    rejoin_iteration,
    validate_fault_policy,
)
from repro.parallel.tracing import EventTrace
from repro.telemetry import bus as telemetry

__all__ = ["MasterProcess", "MasterOutcome"]


class MasterOutcome:
    """What the master returns: per-cell results plus liveness bookkeeping."""

    def __init__(self, results: dict[int, SlaveResult], dead_ranks: list[int],
                 node_info: list[NodeInfo], placement: dict[int, str],
                 trace: EventTrace, wall_time_s: float,
                 degraded_ranks: list[int] | None = None,
                 recovered_ranks: list[int] | None = None):
        self.results = results
        self.dead_ranks = dead_ranks
        self.node_info = node_info
        self.placement = placement
        self.trace = trace
        self.wall_time_s = wall_time_s
        self.degraded_ranks = degraded_ranks or []
        self.recovered_ranks = recovered_ranks or []

    @property
    def complete(self) -> bool:
        return not self.dead_ranks


class MasterProcess:
    """One master rank; drive with :meth:`run`."""

    def __init__(self, comm: CommManager, config: ExperimentConfig, *,
                 platform: ClusterPlatform | None = None,
                 placement_plan: PlacementPlan | None = None,
                 exchange_mode: str = "neighbors", profile: bool = False,
                 trace: bool = False, fault_at: dict[int, int] | None = None,
                 fault_kill: bool = False,
                 heartbeat_interval_s: float | None = None,
                 miss_limit: int = 8,
                 telemetry_level: str | None = None,
                 fault_policy: str = "abort",
                 snapshot_every: int = 0,
                 max_restarts: int = 0,
                 restart_grace_s: float = 30.0,
                 respawn_expected: bool = False):
        self.comm = comm
        self.config = config
        self.platform = platform if platform is not None else cluster_uy()
        self.placement_plan = placement_plan
        self.exchange_mode = exchange_mode
        self.profile = profile
        self.trace_enabled = trace
        self.fault_at = dict(fault_at or {})
        self.fault_kill = fault_kill
        self.fault_policy = validate_fault_policy(fault_policy)
        self.snapshot_every = snapshot_every
        self.max_restarts = max_restarts
        self.restart_grace_s = restart_grace_s
        self.respawn_expected = respawn_expected
        self.heartbeat_interval_s = (
            heartbeat_interval_s
            if heartbeat_interval_s is not None
            else config.execution.heartbeat_interval_s
        )
        self.miss_limit = miss_limit
        self.telemetry_level = telemetry_level
        self.trace = EventTrace(actor="master", enabled=trace)

    def run(self) -> MasterOutcome:
        comm = self.comm
        config = self.config
        if self.telemetry_level is not None:
            # The master rank itself may be a remote worker that never saw
            # the launcher's environment; the level travels in its options.
            telemetry.set_level(self.telemetry_level)
        start = time.perf_counter()
        rows, cols = config.coevolution.grid_rows, config.coevolution.grid_cols
        grid = Grid(rows, cols, first_slave_rank=1)
        slave_ranks = grid.slave_ranks()

        # (i) Gather infrastructure information.
        node_info = comm.collect_node_info()
        self.trace.record("node info gathered", f"{len(node_info)} slaves")

        # (ii)+(iii) Placement: either the plan the launcher derived from
        # the real host spec (socket backend), or the load-balancing
        # strategy over the (simulated) platform.
        if self.placement_plan is not None:
            plan = self.placement_plan
            if plan.tasks != len(slave_ranks) + 1:
                raise ValueError(
                    f"placement plan covers {plan.tasks} rank(s), job has "
                    f"{len(slave_ranks) + 1}")
        else:
            plan = place_tasks(self.platform, tasks=len(slave_ranks) + 1)
        placement = {0: plan.task_nodes[0]}
        for i, rank in enumerate(slave_ranks):
            placement[rank] = plan.task_nodes[i + 1]
        self.trace.record("placement decided",
                          f"{len(plan.tasks_per_node())} nodes, max load {plan.max_load()}")

        # (iv) Share the parameter configuration; launch the slaves.
        config_json = config.to_json()
        slave_telemetry = telemetry.level_name() if telemetry.enabled() else None
        for rank in slave_ranks:
            cell_index = grid.cell_of_rank(rank)
            comm.send_run_task(rank, RunTask(
                config_json=config_json,
                cell_index=cell_index,
                grid_payload=grid.to_payload(),
                assigned_node=placement[rank],
                exchange_mode=self.exchange_mode,
                profile=self.profile,
                trace=self.trace_enabled,
                telemetry_level=slave_telemetry,
                fault_at_iteration=self.fault_at.get(cell_index),
                fault_kill=self.fault_kill,
                fault_policy=self.fault_policy,
                snapshot_every=self.snapshot_every,
            ))
        self.trace.record("run tasks sent", f"{len(slave_ranks)} slaves")

        # Join the collective context derivation (LOCAL excludes the master).
        comm.build_contexts(is_active_slave=False)

        # Background monitoring (Fig. 3: "Create heartbeat thread").
        self.trace.record("create heartbeat thread")
        monitor = HeartbeatMonitor(
            comm, slave_ranks,
            interval_s=self.heartbeat_interval_s, miss_limit=self.miss_limit,
        )
        monitor.start()

        # Main thread: collect results as slaves finish.  Recovery
        # bookkeeping: ``hosted`` maps each live rank to every cell it
        # currently trains (grows through adoption), ``outstanding`` to the
        # subset the master still awaits a result for.
        results: dict[int, SlaveResult] = {}
        hosted = {rank: {grid.cell_of_rank(rank)} for rank in slave_ranks}
        outstanding = {rank: set(cells) for rank, cells in hosted.items()}
        store = CellCheckpointStore()
        ledger: list[FaultNotice] = []
        handled_dead: set[int] = set()
        degraded_ranks: set[int] = set()
        recovered_ranks: set[int] = set()
        self._restarts_used = 0
        aborted = False
        try:
            while True:
                result = comm.try_collect_result(timeout=0.1)
                if result is not None:
                    self._note_result(result, results, outstanding, monitor)
                self._drain_snapshots(store)
                if monitor.deaths_detected.is_set() and not aborted:
                    # Clear *before* reading the dead set: a death declared
                    # between the read and the clear must re-raise the flag.
                    monitor.deaths_detected.clear()
                    dead_now = sorted(set(monitor.dead_ranks()) - handled_dead)
                    if dead_now:
                        with telemetry.span("fault.detected", rank=0):
                            self.trace.record(
                                "slave failure detected",
                                ", ".join(str(r) for r in dead_now))
                            if self.fault_policy == "abort":
                                # Paper-faithful: gracefully abort survivors.
                                aborted = True
                                handled_dead.update(dead_now)
                                dead = set(monitor.dead_ranks())
                                for rank in slave_ranks:
                                    if rank not in dead:
                                        comm.send_abort(rank)
                            else:
                                self._handle_deaths(
                                    dead_now, grid=grid, results=results,
                                    hosted=hosted, outstanding=outstanding,
                                    store=store, monitor=monitor, ledger=ledger,
                                    handled_dead=handled_dead,
                                    degraded_ranks=degraded_ranks,
                                    recovered_ranks=recovered_ranks,
                                    config_json=config_json,
                                    placement=placement,
                                    slave_telemetry=slave_telemetry,
                                    node_info=node_info)
                if len(results) == len(slave_ranks):
                    break
                if monitor.all_accounted():
                    # Everyone is finished or dead; drain stragglers briefly.
                    result = comm.try_collect_result(timeout=1.0)
                    if result is not None:
                        self._note_result(result, results, outstanding, monitor)
                        continue
                    break
        finally:
            monitor.stop()

        # Reduction phase happens in the runner (it has the metric context);
        # the master returns everything it gathered.
        self.trace.record("final results gathered", f"{len(results)} cells")
        return MasterOutcome(
            results=results,
            dead_ranks=sorted(handled_dead | set(monitor.dead_ranks())),
            node_info=node_info,
            placement=placement,
            trace=self.trace,
            wall_time_s=time.perf_counter() - start,
            degraded_ranks=sorted(degraded_ranks),
            recovered_ranks=sorted(recovered_ranks),
        )

    # -- recovery machinery ---------------------------------------------------------

    def _note_result(self, result: SlaveResult, results: dict[int, SlaveResult],
                     outstanding: dict[int, set[int]],
                     monitor: HeartbeatMonitor) -> None:
        results[result.cell_index] = result
        owner = next((rank for rank, cells in outstanding.items()
                      if result.cell_index in cells), None)
        if owner is not None:
            outstanding[owner].discard(result.cell_index)
        sender = result.rank
        if sender in outstanding and not outstanding[sender]:
            # A rank is finished only once every cell it hosts (own plus
            # adopted) has reported; until then the heartbeat keeps watch.
            resurrected = monitor.mark_finished(sender)
            if resurrected:
                self.trace.record("rank resurrected by result", f"rank {sender}")
        label = "recovered result received" if result.recovered else "result received"
        self.trace.record(label, f"cell {result.cell_index} from rank {sender}")

    def _drain_snapshots(self, store: CellCheckpointStore) -> None:
        if not self.snapshot_every:
            return
        for snapshot in self.comm.drain_cell_snapshots():
            store.update(snapshot)

    def _handle_deaths(self, dead_now: list[int], *, grid: Grid,
                       results: dict[int, SlaveResult],
                       hosted: dict[int, set[int]],
                       outstanding: dict[int, set[int]],
                       store: CellCheckpointStore,
                       monitor: HeartbeatMonitor,
                       ledger: list[FaultNotice],
                       handled_dead: set[int],
                       degraded_ranks: set[int],
                       recovered_ranks: set[int],
                       config_json: str,
                       placement: dict[int, str],
                       slave_telemetry: str | None,
                       node_info: list[NodeInfo]) -> None:
        """Turn a wave of detected deaths into migrations/respawns/freezes."""
        comm = self.comm
        # Drain in-flight results first: a result that raced its own death
        # declaration means the cell needs no recovery at all.
        while True:
            result = comm.try_collect_result(timeout=0.0)
            if result is None:
                break
            self._note_result(result, results, outstanding, monitor)
        self._drain_snapshots(store)
        lost: list[tuple[int, int]] = []  # (dead rank, orphaned cell)
        for rank in dead_now:
            handled_dead.add(rank)
            cells = outstanding.pop(rank, set())
            hosted.pop(rank, None)
            lost.extend((rank, cell) for cell in sorted(cells)
                        if cell not in results)
        if not lost:
            return
        snapshots = {
            cell: (store.latest(cell)
                   or initial_cell_snapshot(self.config, cell,
                                            grid.neighborhood_size(cell)))
            for _rank, cell in lost
        }
        known = [l.iteration for l in monitor.snapshot().values() if not l.dead]
        known += list(store.iterations().values())
        known += [snap.iteration for snap in snapshots.values()]
        diameter = grid.rows // 2 + grid.cols // 2
        total = self.config.coevolution.iterations
        rejoin = rejoin_iteration(known, diameter, total)

        reborn: dict[int, NodeInfo] = {}
        if self.fault_policy == "recover" and self.respawn_expected:
            budget = self.max_restarts - self._restarts_used
            want = sorted({rank for rank, _cell in lost})[:max(0, budget)]
            if want:
                reborn = self._await_respawns(
                    want, results=results, outstanding=outstanding,
                    store=store, monitor=monitor)
                self._restarts_used += len(reborn)
                node_info.extend(reborn.values())

        frozen_cells: list[FrozenCell] = []
        resume_ranks: dict[int, FrozenCell] = {}
        for rank, cell in lost:
            snap = snapshots[cell]
            if rank in reborn:
                frozen = FrozenCell(
                    cell_index=cell, iteration=snap.iteration,
                    generator_genome=snap.generator_genome,
                    discriminator_genome=snap.discriminator_genome,
                    mixture_weights=snap.mixture_weights,
                    adopter_rank=rank, rejoin_iteration=rejoin)
                resume_ranks[rank] = frozen
                hosted.setdefault(rank, set()).add(cell)
                outstanding.setdefault(rank, set()).add(cell)
                monitor.revive(rank)
                recovered_ranks.add(rank)
                self.trace.record("rank respawned",
                                  f"rank {rank} resumes cell {cell} at "
                                  f"iteration {snap.iteration}, rejoin {rejoin}")
            elif self.fault_policy == "recover":
                adopter = choose_adopter(outstanding, excluded=handled_dead)
                if adopter is not None:
                    frozen = FrozenCell(
                        cell_index=cell, iteration=snap.iteration,
                        generator_genome=snap.generator_genome,
                        discriminator_genome=snap.discriminator_genome,
                        mixture_weights=snap.mixture_weights,
                        adopter_rank=adopter, rejoin_iteration=rejoin)
                    hosted.setdefault(adopter, set()).add(cell)
                    outstanding.setdefault(adopter, set()).add(cell)
                    recovered_ranks.add(rank)
                    with telemetry.span("fault.migrated", rank=0):
                        self.trace.record(
                            "cell migrated",
                            f"cell {cell} -> rank {adopter} from iteration "
                            f"{snap.iteration}, rejoin {rejoin}")
                else:
                    frozen = self._freeze_cell(rank, cell, snap, results,
                                               degraded_ranks, total)
            else:  # degrade
                frozen = self._freeze_cell(rank, cell, snap, results,
                                           degraded_ranks, total)
            frozen_cells.append(frozen)

        notice = FaultNotice(
            policy=self.fault_policy,
            dead_ranks=tuple(sorted({rank for rank, _cell in lost})),
            cells=tuple(frozen_cells))
        ledger.append(notice)
        for rank, cells in outstanding.items():
            if cells and rank not in resume_ranks:
                comm.send_fault_notice(rank, notice)
        for rank, frozen in resume_ranks.items():
            with telemetry.span("fault.restarted", rank=0):
                comm.send_run_task(rank, RunTask(
                    config_json=config_json,
                    cell_index=frozen.cell_index,
                    grid_payload=grid.to_payload(),
                    assigned_node=placement[rank],
                    exchange_mode=self.exchange_mode,
                    profile=self.profile,
                    trace=self.trace_enabled,
                    telemetry_level=slave_telemetry,
                    fault_policy=self.fault_policy,
                    snapshot_every=self.snapshot_every,
                    resume=ResumeDirective(
                        snapshot=frozen.snapshot(),
                        rejoin_iteration=frozen.rejoin_iteration,
                        notices=tuple(ledger)),
                ))

    def _freeze_cell(self, rank: int, cell: int, snap, results: dict[int, SlaveResult],
                     degraded_ranks: set[int], total_iterations: int) -> FrozenCell:
        """Degrade: the cell stays at its checkpoint for the rest of the run."""
        degraded_ranks.add(rank)
        results[cell] = SlaveResult(
            rank=rank, cell_index=cell,
            generator_genome=snap.generator_genome,
            discriminator_genome=snap.discriminator_genome,
            mixture_weights=snap.mixture_weights,
            reports=[])
        self.trace.record("cell frozen",
                          f"cell {cell} degraded at iteration {snap.iteration}")
        return FrozenCell(
            cell_index=cell, iteration=snap.iteration,
            generator_genome=snap.generator_genome,
            discriminator_genome=snap.discriminator_genome,
            mixture_weights=snap.mixture_weights,
            adopter_rank=None, rejoin_iteration=total_iterations)

    def _await_respawns(self, want: list[int], *, results, outstanding,
                        store, monitor) -> dict[int, NodeInfo]:
        """Wait (bounded) for replacement workers to introduce themselves."""
        reborn: dict[int, NodeInfo] = {}
        pending = set(want)
        deadline = time.monotonic() + self.restart_grace_s
        self.trace.record("awaiting respawn", ", ".join(str(r) for r in want))
        while pending and time.monotonic() < deadline:
            info = self.comm.try_collect_node_info(timeout=0.1)
            if info is not None and info.rank in pending:
                reborn[info.rank] = info
                pending.discard(info.rank)
                continue
            result = self.comm.try_collect_result(timeout=0.0)
            if result is not None:
                self._note_result(result, results, outstanding, monitor)
            self._drain_snapshots(store)
        return reborn
