"""One-call distributed training: the ``mpiexec`` entry of the system.

:class:`DistributedRunner` assembles the whole job — one master rank plus
one slave rank per grid cell — over the process backend (true multi-core
parallelism; all paper measurements) or the threaded backend (deterministic
tests).  The dataset is rendered **once** in the parent before launch; the
fork start method then shares those pages copy-on-write with every slave,
which is the memory-efficiency behavior the paper credits for its
superlinear small-grid speedups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster import ClusterPlatform
from repro.config import ExperimentConfig
from repro.coevolution.cell import CellReport
from repro.coevolution.genome import Genome
from repro.coevolution.sequential import TrainingResult, build_training_dataset
from repro.data.dataset import ArrayDataset
from repro.mpi import run_mpi
from repro.mpi.errors import MpiWorkerError
from repro.parallel.comm_manager import MpiCommManager
from repro.parallel.master import MasterOutcome, MasterProcess
from repro.parallel.messages import SlaveResult
from repro.parallel.slave import SlaveProcess
from repro.parallel.tracing import EventTrace
from repro.profiling import TimerSnapshot, merge_snapshots
from repro.runtime import pin_blas_threads

__all__ = ["DistributedRunner", "DistributedResult"]


@dataclass
class DistributedResult:
    """Everything a distributed run produced."""

    training: TrainingResult
    outcome_placement: dict[int, str]
    dead_ranks: list[int] = field(default_factory=list)
    traces: list[EventTrace] = field(default_factory=list)
    slave_timers: list[TimerSnapshot] = field(default_factory=list)
    master_wall_time_s: float = 0.0

    @property
    def complete(self) -> bool:
        return not self.dead_ranks

    def distributed_profile(self) -> TimerSnapshot:
        """Wall-clock view of the four routines: max across concurrent slaves."""
        return merge_snapshots(self.slave_timers, parallel=True)

    def total_work_profile(self) -> TimerSnapshot:
        """CPU-work view: per-routine sum over all slaves."""
        return merge_snapshots(self.slave_timers, parallel=False)

    def to_servable(self, cell: int | None = None):
        """Hand the reduced result to the serving layer (see
        :meth:`TrainingResult.to_servable`)."""
        return self.training.to_servable(cell=cell)


class DistributedRunner:
    """Configure once, then :meth:`run`."""

    def __init__(self, config: ExperimentConfig, *, backend: str | None = None,
                 exchange_mode: str = "neighbors", profile: bool = False,
                 trace: bool = False, platform: ClusterPlatform | None = None,
                 fault_at: dict[int, int] | None = None,
                 heartbeat_interval_s: float | None = None,
                 miss_limit: int = 8, timeout_s: float = 600.0,
                 dataset: ArrayDataset | None = None):
        from repro import _deprecation

        _deprecation.warn_once(
            "DistributedRunner",
            "direct DistributedRunner use is deprecated; run it through "
            "repro.api.Experiment(config).backend('process').run()",
        )
        self.config = config
        self.backend = backend if backend is not None else config.execution.backend
        if self.backend not in ("process", "threaded"):
            raise ValueError(
                f"distributed runner needs 'process' or 'threaded', got {self.backend!r} "
                "(use coevolution.SequentialTrainer for the single-core version)"
            )
        self.exchange_mode = exchange_mode
        self.profile = profile
        self.trace = trace
        self.platform = platform
        self.fault_at = fault_at
        self.heartbeat_interval_s = heartbeat_interval_s
        self.miss_limit = miss_limit
        self.timeout_s = timeout_s
        self.dataset = dataset

    def run(self) -> DistributedResult:
        # One rank = one core (paper Table II); ranks inherit the pin via fork.
        pin_blas_threads(1)
        config = self.config
        size = config.coevolution.cells + 1
        # Render once in the parent: slaves inherit the pages via fork
        # (process backend) or share the object directly (threaded backend).
        dataset = self.dataset if self.dataset is not None else build_training_dataset(config)

        master_kwargs = dict(
            platform=self.platform,
            exchange_mode=self.exchange_mode,
            profile=self.profile,
            trace=self.trace,
            fault_at=self.fault_at,
            heartbeat_interval_s=self.heartbeat_interval_s,
            miss_limit=self.miss_limit,
        )

        def entry(world):
            comm = MpiCommManager(world)
            if world.Get_rank() == 0:
                return MasterProcess(comm, config, **master_kwargs).run()
            return SlaveProcess(comm, dataset).run()

        start = time.perf_counter()
        fault_tolerant = bool(self.fault_at)
        outcomes = run_mpi(size, entry, backend=self.backend, timeout=self.timeout_s,
                           allow_failures=fault_tolerant)
        master_outcome: MasterOutcome | None = outcomes[0]
        if master_outcome is None:
            raise MpiWorkerError(getattr(outcomes, "failures", {0: "master failed"}))
        wall = time.perf_counter() - start
        return self._reduce(master_outcome, wall)

    # -- reduction phase -------------------------------------------------------------

    def _reduce(self, outcome: MasterOutcome, wall_time_s: float) -> DistributedResult:
        """The paper's reduction: merge per-slave results into one artifact."""
        cells = self.config.coevolution.cells
        genomes: list[tuple[Genome, Genome] | None] = [None] * cells
        mixtures: list[np.ndarray | None] = [None] * cells
        reports: list[list[CellReport]] = [[] for _ in range(cells)]
        timers: list[TimerSnapshot] = []
        traces: list[EventTrace] = [outcome.trace]
        for cell_index, result in sorted(outcome.results.items()):
            genomes[cell_index] = (result.generator_genome, result.discriminator_genome)
            mixtures[cell_index] = result.mixture_weights
            reports[cell_index] = result.reports
            if result.timer is not None:
                timers.append(result.timer)
            if result.trace_events:
                traces.append(EventTrace(actor=f"slave-{result.rank}",
                                         events=list(result.trace_events)))

        present = [g for g in genomes if g is not None]
        if not present:
            raise RuntimeError("no slave delivered results; nothing to reduce")
        # Fill holes (dead slaves) with the best available center so the
        # result object stays rectangular; holes are recorded in dead_ranks.
        filler = present[0]
        training = TrainingResult(
            config=self.config,
            center_genomes=[g if g is not None else filler for g in genomes],
            mixture_weights=[
                m if m is not None else np.full(5, 0.2) for m in mixtures
            ],
            cell_reports=reports,
            wall_time_s=wall_time_s,
            timer_snapshots=timers,
        )
        return DistributedResult(
            training=training,
            outcome_placement=outcome.placement,
            dead_ranks=outcome.dead_ranks,
            traces=traces,
            slave_timers=timers,
            master_wall_time_s=outcome.wall_time_s,
        )
