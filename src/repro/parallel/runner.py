"""One-call distributed training: the ``mpiexec`` entry of the system.

:class:`DistributedRunner` assembles the whole job — one master rank plus
one slave rank per grid cell — over any registered MPI transport: the
process backend (true multi-core parallelism; all paper measurements), the
threaded backend (deterministic tests), or the socket backend (TCP worker
processes on one or many machines).

The dataset travels in whichever way the substrate makes cheap.  Fork-based
backends render it **once** in the parent and share the pages copy-on-write
with every slave — the memory-efficiency behavior the paper credits for its
superlinear small-grid speedups.  Spawn-based socket workers cannot inherit
pages, so they receive a *dataset spec* and render it once **per node**
(process-level cache shared by co-hosted ranks); an explicitly provided
dataset object is pickled across instead.  Either way the rendering is a
deterministic function of the config, which is what keeps the same seed
bit-identical across all three substrates.

Genomes move as single contiguous buffers end to end: each network's
parameters live in one :class:`~repro.nn.arena.ParameterArena` slab, so a
center snapshot is one memcpy, the socket wire ships it as one out-of-band
frame segment, and "update genomes" on the receiving cell is one contiguous
write into the sub-population slab.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster import ClusterPlatform, PlacementPlan, plan_from_hosts, platform_from_hosts
from repro.config import ExperimentConfig
from repro.coevolution.cell import CellReport
from repro.coevolution.genome import Genome
from repro.coevolution.sequential import TrainingResult, build_training_dataset
from repro.data.dataset import ArrayDataset
from repro.mpi import TransportStats, run_mpi
from repro.mpi.errors import MpiWorkerError
from repro.mpi.transport import available_transports
from repro.parallel.comm_manager import MpiCommManager
from repro.parallel.master import MasterOutcome, MasterProcess
from repro.parallel.slave import SlaveProcess
from repro.parallel.tracing import EventTrace
from repro.profiling import TimerSnapshot, merge_snapshots
from repro.runtime import pin_blas_threads
from repro.telemetry import bus as telemetry

__all__ = ["DistributedRunner", "DistributedResult"]


# -- the per-rank program (module-level: picklable for remote workers) --------

#: Datasets rendered on this node, shared by every co-hosted rank.
_NODE_DATASETS: dict[tuple, ArrayDataset] = {}
_NODE_DATASETS_LOCK = threading.Lock()


def _materialize_dataset(config: ExperimentConfig, payload: tuple) -> ArrayDataset:
    """Resolve one slave's training data from its travel form.

    ``("inline", dataset)`` — the object itself (fork COW or pickled bytes);
    ``("registry", name, options)`` — create from the dataset registry;
    ``("render", None)`` — the default synthetic corpus.  Registry/render
    forms are cached per process, so a worker hosting several ranks renders
    once per node, not once per rank.
    """
    kind = payload[0]
    if kind == "inline":
        return payload[1]
    if kind == "registry":
        _, name, options = payload
        # repr() keys stay hashable whatever the option values are (dict
        # and list options are legal for registered dataset factories).
        key = ("registry", name, repr(sorted(options.items())),
               config.dataset_size, config.seed)
        with _NODE_DATASETS_LOCK:
            if key not in _NODE_DATASETS:
                from repro.registry import DATASETS

                _NODE_DATASETS[key] = DATASETS.create(name, config, **options)
            return _NODE_DATASETS[key]
    if kind == "render":
        key = ("render", config.dataset_size, config.seed)
        with _NODE_DATASETS_LOCK:
            if key not in _NODE_DATASETS:
                _NODE_DATASETS[key] = build_training_dataset(config)
            return _NODE_DATASETS[key]
    raise ValueError(f"unknown dataset payload kind {kind!r}")


def _distributed_entry(world, config: ExperimentConfig, dataset_payload: tuple,
                       master_options: dict[str, Any]):
    """What every rank runs, on every transport.

    Pinning happens *here* rather than only in the launching process so
    spawn-based remote workers — which inherit neither the parent's ctypes
    call nor necessarily its environment — initialise BLAS correctly too.
    """
    pin_blas_threads(1)  # one rank = one core (paper Table II)
    comm = MpiCommManager(world)
    if world.Get_rank() == 0:
        return MasterProcess(comm, config, **master_options).run()
    dataset = _materialize_dataset(config, dataset_payload)
    return SlaveProcess(comm, dataset).run()


@dataclass
class DistributedResult:
    """Everything a distributed run produced."""

    training: TrainingResult
    outcome_placement: dict[int, str]
    dead_ranks: list[int] = field(default_factory=list)
    traces: list[EventTrace] = field(default_factory=list)
    slave_timers: list[TimerSnapshot] = field(default_factory=list)
    master_wall_time_s: float = 0.0
    transport_stats: list[TransportStats] = field(default_factory=list)
    """Per-rank message/byte counters, rank order (rank 0 is the master)."""
    telemetry: Any = None
    """Merged :class:`repro.telemetry.bus.MergedTelemetry` across every rank
    plus the launcher (``None`` when telemetry was off for the run)."""
    fault_policy: str = "abort"
    degraded_ranks: list[int] = field(default_factory=list)
    """Ranks whose cells finished frozen at their last checkpoint (degrade
    policy, or recover with nobody left to adopt)."""
    recovered_ranks: list[int] = field(default_factory=list)
    """Dead ranks whose cells were trained to completion anyway — by a
    respawned replacement worker or an adopting survivor."""
    drained_ranks: list[int] = field(default_factory=list)
    """Ranks that left *voluntarily* mid-run (``repro drain``, SIGTERM):
    their cells were checkpointed and handed off, so a drain is never a
    fault — it does not appear in ``dead_ranks`` and leaves ``ok`` True."""
    joined_ranks: list[int] = field(default_factory=list)
    """Ranks admitted through the live rendezvous after launch — elastic
    joiners filling vacant slots (as standby adopters or reclaiming a
    degraded cell)."""
    membership: Any = None
    """The run's :class:`repro.parallel.elastic.MembershipLog` — every
    epoch transition (launch/death/drain/join/respawn) in order, or ``None``
    when the backend did not report one."""

    @property
    def complete(self) -> bool:
        return not self.dead_ranks

    @property
    def ok(self) -> bool:
        """Did the run deliver what its fault policy promises?

        ``abort``: only a fault-free run is ok.  ``degrade``: ok — frozen
        cells are the documented contract.  ``recover``: ok unless a cell
        could not be recovered and fell back to degraded.
        """
        if not self.dead_ranks:
            return True
        if self.fault_policy == "abort":
            return False
        if self.fault_policy == "degrade":
            return True
        return not self.degraded_ranks

    def distributed_profile(self) -> TimerSnapshot:
        """Wall-clock view of the four routines: max across concurrent slaves."""
        return merge_snapshots(self.slave_timers, parallel=True)

    def total_work_profile(self) -> TimerSnapshot:
        """CPU-work view: per-routine sum over all slaves."""
        return merge_snapshots(self.slave_timers, parallel=False)

    def to_servable(self, cell: int | None = None):
        """Hand the reduced result to the serving layer (see
        :meth:`TrainingResult.to_servable`)."""
        return self.training.to_servable(cell=cell)


class DistributedRunner:
    """Configure once, then :meth:`run`."""

    def __init__(self, config: ExperimentConfig, *, backend: str | None = None,
                 exchange_mode: str = "neighbors", profile: bool = False,
                 trace: bool = False, platform: ClusterPlatform | None = None,
                 placement: PlacementPlan | None = None,
                 fault_at: dict[int, int] | None = None,
                 fault_kill: bool = False,
                 fault_policy: str = "abort",
                 max_restarts: int = 0,
                 snapshot_every: int | None = None,
                 restart_grace_s: float = 30.0,
                 allow_failures: bool | None = None,
                 heartbeat_interval_s: float | None = None,
                 miss_limit: int = 8, timeout_s: float = 600.0,
                 dataset: ArrayDataset | None = None,
                 dataset_spec: tuple[str, dict] | None = None,
                 hosts: Any = None, bind: str | None = None,
                 token: str | None = None,
                 transport_options: dict[str, Any] | None = None):
        from repro import _deprecation

        _deprecation.warn_once(
            "DistributedRunner",
            "direct DistributedRunner use is deprecated; run it through "
            "repro.api.Experiment(config).backend('process').run()",
        )
        self.config = config
        self.backend = backend if backend is not None else config.execution.backend
        transports = available_transports()
        if self.backend not in transports:
            raise ValueError(
                f"distributed runner needs a registered transport "
                f"({sorted(transports)}), got {self.backend!r} "
                "(use coevolution.SequentialTrainer for the single-core version)"
            )
        # "process" and "threaded" are the in-process substrates; any other
        # registered transport hosts its ranks elsewhere (spawned or remote
        # workers) and therefore gets hosts/bind passed through and the
        # spawn-safe dataset path (render per node) without edits here.
        # Host-spec-derived *placement* stays socket-only below — it
        # encodes that transport's contiguous-block rank assignment.
        self.remote = self.backend not in ("process", "threaded")
        if not self.remote and (hosts is not None or bind is not None
                                or token is not None):
            raise ValueError(
                f"hosts/bind/token do not apply to the in-process "
                f"{self.backend!r} backend; use a remote transport such as "
                "'socket'")
        if fault_kill and self.backend == "threaded":
            raise ValueError(
                "fault_kill terminates the hosting process; on the threaded "
                "backend that would kill the launcher itself")
        if fault_kill and self.backend == "socket":
            # os._exit takes down the whole worker process — every
            # co-hosted rank dies with the victim, so the faulted rank
            # must ride alone on its worker for the test to mean anything.
            self._check_fault_kill_isolation(config, fault_at, hosts)
        from repro.parallel.recovery import validate_fault_policy

        validate_fault_policy(fault_policy)
        if fault_policy != "abort" and exchange_mode != "neighbors":
            raise ValueError(
                f"fault policy {fault_policy!r} needs the synchronous "
                "'neighbors' exchange (frozen-cell satisfaction and rejoin "
                f"are defined against it), got exchange_mode={exchange_mode!r}")
        if max_restarts and fault_policy != "recover":
            raise ValueError("max_restarts only applies to fault_policy='recover'")
        self.exchange_mode = exchange_mode
        self.profile = profile
        self.trace = trace
        self.platform = platform
        self.placement = placement
        self.fault_at = fault_at
        self.fault_kill = fault_kill
        self.fault_policy = fault_policy
        self.max_restarts = max_restarts
        # Non-abort policies need in-run checkpoints to recover from; default
        # to every iteration.  0 (the abort default) sends nothing, keeping
        # the no-fault message flow byte-identical to the legacy protocol.
        if snapshot_every is None:
            snapshot_every = 1 if fault_policy != "abort" else 0
        self.snapshot_every = snapshot_every
        self.restart_grace_s = restart_grace_s
        self.allow_failures = allow_failures
        self.heartbeat_interval_s = heartbeat_interval_s
        self.miss_limit = miss_limit
        self.timeout_s = timeout_s
        self.dataset = dataset
        self.dataset_spec = dataset_spec
        self.hosts = hosts
        self.bind = bind
        self.token = token
        self.transport_options = dict(transport_options or {})

    # -- wiring ----------------------------------------------------------------

    @staticmethod
    def _check_fault_kill_isolation(config: ExperimentConfig,
                                    fault_at: dict[int, int] | None,
                                    hosts: Any) -> None:
        """Faulted ranks must be the sole occupant of their socket worker."""
        from repro.mpi.socket_transport import parse_host_spec

        if not fault_at:
            return
        size = config.coevolution.cells + 1
        victim_ranks = {cell + 1 for cell in fault_at}
        lonely: set[int] = set()
        rank = 0
        for _host, slots in parse_host_spec(hosts, size):  # None -> 1 worker
            if slots == 1:
                lonely.add(rank)
            rank += slots
        stranded = victim_ranks - lonely
        if stranded:
            raise ValueError(
                f"fault_kill on the socket backend requires each faulted "
                f"rank to be alone on its worker (os._exit kills every "
                f"co-hosted rank); rank(s) {sorted(stranded)} share a "
                "worker — isolate them in hosts, e.g. "
                "'127.0.0.1:4,127.0.0.1:1' to kill rank 4 of a 2x2 grid")

    def _dataset_payload(self) -> tuple:
        """How the training data travels to the slaves (see module docstring)."""
        if self.dataset is not None:
            return ("inline", self.dataset)
        if self.remote:
            if self.dataset_spec is not None:
                name, options = self.dataset_spec
                return ("registry", name, dict(options))
            return ("render", None)
        # Fork/thread substrates: render once here, share by reference/COW.
        return ("inline", build_training_dataset(self.config))

    def _placement_and_platform(self) -> tuple[PlacementPlan | None, ClusterPlatform | None]:
        """The master's placement inputs.

        With a socket host spec, rank-to-host assignment is decided by the
        transport (contiguous blocks in spec order) — the plan derived here
        reports that real mapping, and the platform models the attached
        machines instead of the simulated Cluster-UY.
        """
        plan, platform = self.placement, self.platform
        if self.backend == "socket" and plan is None:
            from repro.mpi.socket_transport import parse_host_spec

            size = self.config.coevolution.cells + 1
            hosts = parse_host_spec(self.hosts, size)  # None -> one local worker
            plan = plan_from_hosts(hosts)
            if platform is None:
                platform = platform_from_hosts(hosts)
        # Other remote transports: no placement assumption is safe, so the
        # master falls back to its simulated-platform strategy unless the
        # caller provides an explicit plan.
        return plan, platform

    def _transport_options(self) -> dict[str, Any]:
        options = dict(self.transport_options)
        if self.remote:
            if self.hosts is not None:
                options.setdefault("hosts", self.hosts)
            if self.bind is not None:
                options.setdefault("bind", self.bind)
        if self.backend == "socket":
            # The socket handshake advertises the run's dtype policy so
            # mixed-dtype peers are rejected at rendezvous, not after they
            # corrupt a genome exchange.
            options.setdefault("dtype", self.config.network.dtype)
            if self.token is not None:
                # A caller-fixed rendezvous token: lets operators join
                # workers (`repro worker --join`) or drain ranks
                # (`repro drain`) without scraping the generated one.
                options.setdefault("token", self.token)
            if self.fault_policy == "recover" and self.max_restarts > 0:
                # The coordinator respawns a replacement worker for a dead
                # connection; the reborn rank re-introduces itself and the
                # master resumes it from checkpoint.
                options.setdefault("max_restarts", self.max_restarts)
        return options

    def run(self) -> DistributedResult:
        # One rank = one core (paper Table II).  Forked ranks inherit the
        # pin; spawned socket workers re-pin inside _distributed_entry.
        pin_blas_threads(1)
        config = self.config
        size = config.coevolution.cells + 1
        plan, platform = self._placement_and_platform()

        master_options = dict(
            platform=platform,
            placement_plan=plan,
            exchange_mode=self.exchange_mode,
            profile=self.profile,
            trace=self.trace,
            fault_at=self.fault_at,
            fault_kill=self.fault_kill,
            fault_policy=self.fault_policy,
            snapshot_every=self.snapshot_every,
            max_restarts=self.max_restarts,
            restart_grace_s=self.restart_grace_s,
            # Only the socket transport can put a new process under a dead
            # rank; elsewhere "recover" falls back to in-grid adoption.
            respawn_expected=(self.backend == "socket"
                              and self.fault_policy == "recover"
                              and self.max_restarts > 0),
            heartbeat_interval_s=self.heartbeat_interval_s,
            miss_limit=self.miss_limit,
            # In-band propagation: the master rank (and through its RunTask
            # every slave) adopts the launcher's level even when it runs in
            # a remote worker without the launcher's environment.
            telemetry_level=telemetry.level_name() if telemetry.enabled() else None,
        )

        start = time.perf_counter()
        fault_tolerant = (self.allow_failures if self.allow_failures is not None
                          else bool(self.fault_at) or self.fault_policy != "abort")
        outcomes = run_mpi(
            size, _distributed_entry,
            args=(config, self._dataset_payload(), master_options),
            backend=self.backend, timeout=self.timeout_s,
            allow_failures=fault_tolerant,
            transport_options=self._transport_options(),
        )
        master_outcome: MasterOutcome | None = outcomes[0]
        if master_outcome is None:
            raise MpiWorkerError(getattr(outcomes, "failures", {0: "master failed"}))
        wall = time.perf_counter() - start
        stats = list(getattr(outcomes, "transport_stats", []))
        rank_telemetry = list(getattr(outcomes, "telemetry", []))
        return self._reduce(master_outcome, wall, stats, rank_telemetry)

    # -- reduction phase -------------------------------------------------------------

    def _reduce(self, outcome: MasterOutcome, wall_time_s: float,
                transport_stats: list[TransportStats] | None = None,
                rank_telemetry: list[Any] | None = None) -> DistributedResult:
        """The paper's reduction: merge per-slave results into one artifact."""
        cells = self.config.coevolution.cells
        genomes: list[tuple[Genome, Genome] | None] = [None] * cells
        mixtures: list[np.ndarray | None] = [None] * cells
        reports: list[list[CellReport]] = [[] for _ in range(cells)]
        timers: list[TimerSnapshot] = []
        traces: list[EventTrace] = [outcome.trace]
        for cell_index, result in sorted(outcome.results.items()):
            genomes[cell_index] = (result.generator_genome, result.discriminator_genome)
            mixtures[cell_index] = result.mixture_weights
            reports[cell_index] = result.reports
            if result.timer is not None:
                timers.append(result.timer)
            if result.trace_events:
                traces.append(EventTrace(actor=f"slave-{result.rank}",
                                         events=list(result.trace_events)))

        present = [g for g in genomes if g is not None]
        if not present:
            raise RuntimeError("no slave delivered results; nothing to reduce")
        # Fill holes (dead slaves) with the best available center so the
        # result object stays rectangular; holes are recorded in dead_ranks.
        filler = present[0]
        # A hole's uniform mixture filler must match *that cell's*
        # neighborhood size (per-cell on custom grids; wraparound 2x2
        # grids have s=4) or it mismatches the cell's generator list.
        from repro.parallel.grid import Grid

        grid = Grid(self.config.coevolution.grid_rows,
                    self.config.coevolution.grid_cols)
        training = TrainingResult(
            config=self.config,
            center_genomes=[g if g is not None else filler for g in genomes],
            mixture_weights=[
                m if m is not None else np.full(
                    grid.neighborhood_size(cell), 1.0 / grid.neighborhood_size(cell))
                for cell, m in enumerate(mixtures)
            ],
            cell_reports=reports,
            wall_time_s=wall_time_s,
            timer_snapshots=timers,
        )
        # Telemetry merge: prefer the transport-level per-rank snapshots,
        # add the in-band SlaveResult copies (the fallback path) and the
        # launcher's own buffer; merge_telemetry dedupes rank collisions
        # keeping the richer snapshot.
        snapshots = [s for s in (rank_telemetry or []) if s is not None]
        for _cell, result in sorted(outcome.results.items()):
            snap = getattr(result, "telemetry", None)
            if snap is not None:
                snapshots.append(snap)
        if telemetry.enabled():
            launcher_snap = telemetry.snapshot(None)
            if not launcher_snap.empty:
                snapshots.append(launcher_snap)
        merged = telemetry.merge_telemetry(snapshots) if snapshots else None
        return DistributedResult(
            training=training,
            outcome_placement=outcome.placement,
            dead_ranks=outcome.dead_ranks,
            traces=traces,
            slave_timers=timers,
            master_wall_time_s=outcome.wall_time_s,
            transport_stats=list(transport_stats or []),
            telemetry=merged,
            fault_policy=self.fault_policy,
            degraded_ranks=list(getattr(outcome, "degraded_ranks", [])),
            recovered_ranks=list(getattr(outcome, "recovered_ranks", [])),
            drained_ranks=list(getattr(outcome, "drained_ranks", [])),
            joined_ranks=list(getattr(outcome, "joined_ranks", [])),
            membership=getattr(outcome, "membership", None),
        )
