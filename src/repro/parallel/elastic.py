"""Elastic membership: epochs, the membership log, and graceful drains.

PR 9 could resurrect a *dead* rank like-for-like; this module is the layer
that makes membership itself dynamic.  The master owns one
:class:`MembershipTable` whose **epoch** counter increases monotonically —
every join, planned departure (drain), death, and respawn bumps it — and
whose :class:`MembershipLog` records each transition so a churned run can
be audited after the fact.  Exchange payloads are stamped with the epoch
current at send time; receivers fence out frames from before the epoch in
which a cell last changed hands (see ``FaultState.min_epoch_for``), so a
stale payload from a drained rank's final iterations cannot corrupt its
adopter's generation.

The module also hosts the process-wide **drain registry**: the bridge
between asynchronous drain triggers (a SIGTERM handler, a ``DRAIN`` wire
frame from the coordinator) and the slave loops that must wind down at the
next iteration boundary.  A registry rather than per-object state because
the triggers fire in contexts (signal handlers, transport reader threads)
that have no handle on the :class:`~repro.parallel.slave.SlaveProcess`
instances hosted by the process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.coevolution.checkpoint import CellSnapshot

__all__ = [
    "MEMBERSHIP_KINDS",
    "MembershipEvent",
    "MembershipLog",
    "MembershipTable",
    "DrainNotice",
    "request_drain",
    "drain_requested",
    "mark_drained",
    "was_drained",
    "reset_drain_registry",
]

#: Every way the member set can change.  ``launch`` is epoch 0 (the initial
#: roster); the rest bump the epoch by one each.
MEMBERSHIP_KINDS = ("launch", "death", "drain", "join", "respawn")


@dataclass(frozen=True)
class MembershipEvent:
    """One epoch transition: what changed, which ranks, which cells."""

    epoch: int
    kind: str
    ranks: tuple[int, ...]
    cells: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in MEMBERSHIP_KINDS:
            raise ValueError(
                f"unknown membership kind {self.kind!r}; "
                f"expected one of {MEMBERSHIP_KINDS}")


class MembershipLog:
    """Append-only record of every epoch transition in a run.

    Deliberately timestamp-free (rule R2): the log rides home inside the
    :class:`~repro.parallel.runner.DistributedResult` and must not make an
    otherwise-deterministic result object differ between runs.
    """

    def __init__(self, events: Iterable[MembershipEvent] = ()):
        self._events: list[MembershipEvent] = list(events)

    def record(self, event: MembershipEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> tuple[MembershipEvent, ...]:
        return tuple(self._events)

    def epochs(self) -> list[int]:
        return [event.epoch for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{e.epoch}:{e.kind}{list(e.ranks)}"
                         for e in self._events)
        return f"MembershipLog([{body}])"


class MembershipTable:
    """The master's authoritative view of who is in the run, by epoch.

    Static-membership runs never call :meth:`bump`, so the epoch stays 0
    for the whole run — every payload is stamped 0, every fence passes, and
    the message flow is byte-identical to a build without this module.
    """

    def __init__(self, slave_ranks: Iterable[int]):
        self._lock = threading.Lock()
        self._epoch = 0
        ranks = tuple(sorted(slave_ranks))
        self._members: set[int] = set(ranks)
        self._log = MembershipLog()
        self._log.record(MembershipEvent(epoch=0, kind="launch", ranks=ranks))

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def log(self) -> MembershipLog:
        return self._log

    def members(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._members))

    def bump(self, kind: str, ranks: Iterable[int],
             cells: Iterable[int] = ()) -> int:
        """Record one membership change; returns the new epoch."""
        ranks = tuple(sorted(ranks))
        with self._lock:
            self._epoch += 1
            if kind in ("join", "respawn"):
                self._members.update(ranks)
            elif kind in ("death", "drain"):
                self._members.difference_update(ranks)
            event = MembershipEvent(epoch=self._epoch, kind=kind,
                                    ranks=ranks, cells=tuple(sorted(cells)))
            self._log.record(event)
            return self._epoch


@dataclass(frozen=True)
class DrainNotice:
    """Leaving slave -> master: my final checkpoints, hand these cells off."""

    rank: int
    snapshots: tuple[CellSnapshot, ...] = field(default_factory=tuple)

    @property
    def cells(self) -> tuple[int, ...]:
        return tuple(snap.cell_index for snap in self.snapshots)


# --------------------------------------------------------------------------
# Drain registry: the asynchronous drain trigger, visible process-wide.
# --------------------------------------------------------------------------

_drain_lock = threading.Lock()
_drain_requested: set[int] = set()
_drained: set[int] = set()


def request_drain(rank: int) -> None:
    """Ask the named rank (hosted in this process) to drain gracefully.

    Callable from signal handlers and transport reader threads alike: a
    set-add under a lock, no allocation-heavy work.
    """
    with _drain_lock:
        _drain_requested.add(rank)


def drain_requested(rank: int) -> bool:
    with _drain_lock:
        return rank in _drain_requested


def mark_drained(rank: int) -> None:
    """Record that the rank finished its drain protocol."""
    with _drain_lock:
        _drained.add(rank)


def was_drained(rank: int) -> bool:
    with _drain_lock:
        return rank in _drained


def reset_drain_registry() -> None:
    """Clear the registry (tests, and worker processes reusing a PID)."""
    with _drain_lock:
        _drain_requested.clear()
        _drained.clear()
